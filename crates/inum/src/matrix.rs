//! The precomputed access-cost matrix — the second level of INUM's
//! two-level cache.
//!
//! [`crate::Inum::cost`] already amortizes the optimizer's join/sort
//! planning across designs via the skeleton cache, but it still enumerates
//! and costs access paths for *every* `(design, query)` call. The
//! enumeration-heavy advisors (CoPhy's atomic configurations, greedy
//! selection, COLT's epoch profiling, the `2^k`-subset
//! degree-of-interaction sweep) issue thousands of such calls against
//! configurations drawn from one fixed candidate set — so the per-slot,
//! per-candidate access costs can be precomputed once and every
//! configuration cost becomes additions and `min`s over floats:
//!
//! ```text
//! cost(q, C) = min over skeletons k of
//!              internal(k) + Σ_slots min( base(slot, order_k),
//!                                         min_{c ∈ C on slot's table}
//!                                             access(c, slot, order_k) )
//! ```
//!
//! A configuration `C` is a [`CandidateBitset`] over candidate ids;
//! [`CostMatrix::cost`] walks precomputed vectors with zero allocation, no
//! [`PhysicalDesign`] construction and no access-path re-enumeration, and
//! agrees with [`crate::Inum::cost`] exactly (the suite's invariant tests
//! assert this within 1e-6). [`CostMatrix::delta_add`] /
//! [`CostMatrix::delta_remove`] evaluate the cost change of toggling one
//! candidate without materializing the toggled configuration.
//!
//! The matrix additionally serves **concurrent readers**: all cells and
//! registries live in an owned [`MatrixCore`] payload with no borrow of
//! the owning [`Inum`], so the writer-side [`CostMatrix`] (alias
//! [`MatrixBuilder`]) can [`CostMatrix::publish`] its state as an
//! immutable [`crate::MatrixSnapshot`] behind an `Arc`. Any number of
//! [`crate::MatrixReader`] handles then cost configurations lock-free
//! against a consistent generation while the writer keeps mutating; query
//! and split payloads are `Arc`-shared between the writer and its
//! snapshots (copy-on-write at the mutation sites), so a publish pays for
//! the epoch's drift, not for the matrix size.

use crate::budget::WorkBudget;
use crate::inum::Inum;
use crate::key::query_key;
use crate::snapshot::{MatrixReader, PublishSlot};
use pgdesign_catalog::design::{
    HorizontalPartitioning, Index, PhysicalDesign, VerticalPartitioning,
};
use pgdesign_catalog::schema::TableId;
use pgdesign_catalog::sizing;
use pgdesign_optimizer::access::{self, AccessContext, FetchTarget, IndexPathProfile, SlotProfile};
use pgdesign_optimizer::plan::order_satisfies;
use pgdesign_optimizer::CostParams;
use pgdesign_query::ast::{Query, QueryColumn};
use pgdesign_query::Workload;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Durable snapshot/edit-log codec for the matrix. A child module so it
/// can encode the private cell structures directly; the storage framing
/// (CRC, magic headers, stores) lives in `pgdesign-durability`.
#[path = "persist.rs"]
pub mod persist;

use persist::MatrixEdit;

/// Number of worker threads for matrix builds: the `PGDESIGN_THREADS`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism. `PGDESIGN_THREADS=1` pins the build
/// serial (CI uses this to pin determinism, though parallel builds are
/// bit-identical to serial ones by construction).
pub fn build_threads() -> usize {
    match std::env::var("PGDESIGN_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Counters for the matrix layer, aggregated on the owning [`Inum`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatrixStats {
    /// Matrices built from scratch ([`CostMatrix::build`]).
    pub builds: u64,
    /// Precomputed cost cells (one per `(query, slot)` base entry and one
    /// per `(query, slot, candidate)` entry) — the build work, each
    /// roughly one access-path costing. Includes cells computed by the
    /// incremental paths ([`CostMatrix::add_candidate`] /
    /// [`CostMatrix::add_query`]).
    pub cells: u64,
    /// Cells an incremental update *reused* instead of recomputing: when
    /// [`CostMatrix::add_query`] recognises a query already resident (same
    /// cell-identity key) or [`CostMatrix::add_candidate`] an index already
    /// registered, the cells a fresh build would have recomputed for it
    /// count here.
    pub cells_reused: u64,
    /// Wall-clock nanoseconds spent building matrices and applying
    /// incremental updates (cold builds + add/remove work).
    pub build_nanos: u64,
    /// Configuration-cost lookups served from matrices (joint
    /// index+partition lookups included).
    pub lookups: u64,
    /// Precomputed partition cells: per-fragment page counts and
    /// per-`(query, slot, split)` surviving fractions registered on
    /// matrices.
    pub partition_cells: u64,
    /// The subset of `lookups` that costed a configuration with at least
    /// one partition candidate active (the partition-aware cache level).
    pub partition_lookups: u64,
}

impl MatrixStats {
    /// Estimated what-if optimizer calls avoided: every lookup replaces a
    /// per-design cost call, minus the one-off costing work spent filling
    /// the matrix.
    pub fn whatif_calls_avoided(&self) -> u64 {
        self.lookups
            .saturating_sub(self.cells.saturating_add(self.partition_cells))
    }
}

/// A set of candidate ids (positions into the candidate list a
/// [`CostMatrix`] was built over), stored as a bitset so membership tests
/// in the costing hot loop are a single shift-and-mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateBitset {
    words: Vec<u64>,
}

impl CandidateBitset {
    /// Empty set with capacity for `n_candidates` ids.
    pub fn new(n_candidates: usize) -> Self {
        CandidateBitset {
            words: vec![0; n_candidates.div_ceil(64).max(1)],
        }
    }

    /// Empty set with capacity for `n_candidates` ids, filled with `ids`.
    pub fn from_ids<I: IntoIterator<Item = usize>>(n_candidates: usize, ids: I) -> Self {
        let mut s = Self::new(n_candidates);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Add a candidate (the set grows as needed, so ids allocated after
    /// the set was created — e.g. fragments registered mid-search — can be
    /// inserted too).
    pub fn insert(&mut self, id: usize) {
        if id / 64 >= self.words.len() {
            self.words.resize(id / 64 + 1, 0);
        }
        self.words[id / 64] |= 1 << (id % 64);
    }

    /// Remove a candidate (out-of-range ids are simply absent).
    pub fn remove(&mut self, id: usize) {
        if let Some(w) = self.words.get_mut(id / 64) {
            *w &= !(1 << (id % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / 64)
            .is_some_and(|w| w & (1 << (id % 64)) != 0)
    }

    /// Remove every candidate.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of candidates in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no candidate is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The contained candidate ids, ascending (O(set bits), not O(capacity)).
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rem = w;
            std::iter::from_fn(move || {
                if rem == 0 {
                    None
                } else {
                    let b = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

/// Generate a distinct bitset newtype per candidate-id space, so fragment
/// ids, split ids and index-candidate ids cannot be mixed up in advisor
/// code.
macro_rules! id_bitset {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(CandidateBitset);

        impl $name {
            /// Empty set with capacity for `n` ids (grows on demand).
            pub fn new(n: usize) -> Self {
                $name(CandidateBitset::new(n))
            }

            /// Empty set filled with `ids`.
            pub fn from_ids<I: IntoIterator<Item = usize>>(n: usize, ids: I) -> Self {
                $name(CandidateBitset::from_ids(n, ids))
            }

            /// Add an id.
            pub fn insert(&mut self, id: usize) {
                self.0.insert(id);
            }

            /// Remove an id.
            pub fn remove(&mut self, id: usize) {
                self.0.remove(id);
            }

            /// Membership test.
            #[inline]
            pub fn contains(&self, id: usize) -> bool {
                self.0.contains(id)
            }

            /// Remove every id.
            pub fn clear(&mut self) {
                self.0.clear();
            }

            /// Number of ids in the set.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True when no id is set.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The contained ids, ascending.
            pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.ids()
            }
        }
    };
}

id_bitset! {
    /// A set of vertical-fragment candidate ids (positions into the
    /// fragment registry of the [`CostMatrix`] they belong to). Per table,
    /// the selected fragments *are* that table's vertical partitioning.
    FragmentBitset
}

id_bitset! {
    /// A set of horizontal-split candidate ids (positions into the split
    /// registry of the owning [`CostMatrix`]); at most one split per table
    /// may be selected.
    SplitBitset
}

/// Sentinel for "no order required" in the flattened skeleton requirements.
const NO_ORDER: u32 = u32::MAX;

/// Cap on distinct required orders per slot (asserted at build time; real
/// queries have a handful — one per join/grouping/ordering column).
const MAX_SLOT_ORDERS: usize = 16;

/// Stack capacity for per-slot partition state in a joint lookup (spills
/// to a heap Vec for queries joining more tables).
const MAX_STACK_SLOTS: usize = 8;

/// Partition-adjusted per-slot access minima — one joint lookup's scratch.
#[derive(Clone, Copy)]
struct PartSlotMins {
    /// Cheapest access ignoring order.
    unordered: f64,
    /// Cheapest access per required order.
    ordered: [f64; MAX_SLOT_ORDERS],
}

/// `[None; N]` seed for the stack buffer.
const NO_PART_STATE: Option<PartSlotMins> = None;

/// Column-ordinal membership mask (tables are capped at 128 columns).
fn column_mask(cols: &[u16]) -> u128 {
    cols.iter().fold(0u128, |m, &c| {
        debug_assert!(c < 128, "column masks support up to 128 columns");
        m | (1u128 << c)
    })
}

/// A joint index + partition configuration over one matrix: selected
/// candidate indexes, selected vertical fragments (per table, the selected
/// fragments *are* that table's partitioning; no selection = table
/// unpartitioned), and at most one selected horizontal split per table.
#[derive(Debug, Clone, PartialEq)]
pub struct JointConfig {
    /// Selected candidate indexes.
    pub indexes: CandidateBitset,
    /// Selected vertical fragments.
    pub fragments: FragmentBitset,
    /// Selected horizontal splits (≤ 1 per table).
    pub splits: SplitBitset,
}

impl JointConfig {
    /// True when no partition candidate is selected (pure index config).
    pub fn partitions_empty(&self) -> bool {
        self.fragments.is_empty() && self.splits.is_empty()
    }
}

/// Virtual edits applied on top of a [`JointConfig`] for one costing — the
/// joint analogue of [`CostMatrix::cost_plus`]/[`CostMatrix::cost_minus`].
/// AutoPart's merge and split trials cost out through these without ever
/// materializing the edited configuration (or any `PhysicalDesign`). The
/// trial set is `(cfg ∖ removes) ∪ adds`: adding an id wins over removing
/// the same id, so a merge whose result equals one of its inputs (possible
/// once replication has made one group a subset of another) keeps that
/// fragment selected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JointToggle {
    /// Fragment to treat as selected.
    pub add_fragment: Option<usize>,
    /// Up to two fragments to treat as deselected (a merge removes two).
    pub remove_fragments: [Option<usize>; 2],
    /// Split to treat as selected.
    pub add_split: Option<usize>,
    /// Split to treat as deselected.
    pub remove_split: Option<usize>,
}

impl JointToggle {
    /// The merge trial: fragments `a` and `b` replaced by `merged`.
    pub fn merge(a: usize, b: usize, merged: usize) -> Self {
        JointToggle {
            add_fragment: Some(merged),
            remove_fragments: [Some(a), Some(b)],
            ..Default::default()
        }
    }

    /// The replacement trial: fragment `old` swapped for `new` (AutoPart's
    /// replication step extends one fragment in place).
    pub fn replace(old: usize, new: usize) -> Self {
        JointToggle {
            add_fragment: Some(new),
            remove_fragments: [Some(old), None],
            ..Default::default()
        }
    }

    /// The split trial: horizontal split `id` applied.
    pub fn split(id: usize) -> Self {
        JointToggle {
            add_split: Some(id),
            ..Default::default()
        }
    }

    pub(crate) fn is_noop(&self) -> bool {
        *self == JointToggle::default()
    }
}

/// One access path of a candidate index on a slot, kept in its
/// target-parameterized form so partitioned configurations can re-cost it
/// against any fetch target.
#[derive(Clone)]
struct CandPath {
    /// The partition-independent path skeleton.
    profile: IndexPathProfile,
    /// Bit `o` set when the path's native order satisfies required order
    /// `o` of the slot.
    order_ok: u64,
}

/// Precomputed access costs of one candidate index on one slot.
#[derive(Clone)]
struct CandCosts {
    /// Candidate id (position in the matrix's candidate list).
    id: usize,
    /// Cheapest path cost ignoring order (∞ when the index contributes no
    /// path for this slot) — under the *unpartitioned* fetch target.
    unordered: f64,
    /// Cheapest path cost delivering each distinct required order
    /// (∞ when no path of this candidate satisfies it) — under the
    /// unpartitioned fetch target.
    ordered: Vec<f64>,
    /// The paths behind the minima above, for partitioned re-costing.
    paths: Vec<CandPath>,
}

/// Per-slot cost row: the empty-design base plus per-candidate columns.
#[derive(Clone)]
struct SlotCosts {
    /// The slot's table.
    table: TableId,
    /// Needed-column membership mask (fragment touch tests).
    needed_mask: u128,
    /// Base-table rows (seq-scan re-costing input).
    base_rows: f64,
    /// Filter predicates on the slot (seq-scan re-costing input).
    n_filters: usize,
    /// Fetch target of the unpartitioned table.
    base_target: FetchTarget,
    /// Sequential-scan (base) cost, the only path under the empty design.
    base_unordered: f64,
    /// Base cost per required order (∞ unless the order is trivially
    /// satisfied, i.e. every required column is equality-bound).
    base_ordered: Vec<f64>,
    /// The distinct required orders of this slot (column lists), in the
    /// id order `base_ordered` / `CandCosts::ordered` use — kept so
    /// candidates added later cost their order satisfaction against the
    /// same ids.
    slot_orders: Vec<Vec<u16>>,
    /// Candidates on this slot's table that contribute at least one path.
    cands: Vec<CandCosts>,
}

/// Everything needed to cost one query against any candidate subset.
#[derive(Clone)]
struct QueryMatrix {
    /// Workload weight.
    weight: f64,
    /// Cell-identity key of the query ([`crate::key::query_cell_key`]) —
    /// what [`CostMatrix::add_query`] dedupes on.
    key: u64,
    /// False once the query was rotated out ([`CostMatrix::retire_query`]);
    /// the slot is then free for reuse by a later [`CostMatrix::add_query`].
    active: bool,
    /// Internal (design-independent) cost per skeleton.
    internal: Vec<f64>,
    /// Per skeleton, per slot: required-order id or [`NO_ORDER`].
    reqs: Vec<Vec<u32>>,
    /// Per-slot cost rows.
    slots: Vec<SlotCosts>,
}

/// A registered vertical-fragment candidate.
#[derive(Clone)]
struct Fragment {
    /// Fragmented table.
    table: TableId,
    /// Normalised (sorted, deduped) column group.
    columns: Vec<u16>,
    /// Column membership mask.
    mask: u128,
    /// Heap pages of the fragment (8-byte stored row id included), exactly
    /// as the optimizer's fetch-target computation counts them.
    pages: u64,
}

/// A registered horizontal-split candidate.
#[derive(Clone)]
struct Split {
    /// The partitioning.
    hp: HorizontalPartitioning,
    /// Surviving fraction per `(query, slot)` (1.0 off-table).
    frac: Vec<Vec<f64>>,
}

/// The precomputed per-(query, candidate) access-cost matrix, extensible
/// with partition candidates (vertical fragments and horizontal splits)
/// for joint index+partition costing.
///
/// The matrix is *incrementally maintainable*: it owns its queries and
/// candidate list, so a long-lived consumer (COLT's epoch loop) holds one
/// matrix and rotates work in and out instead of rebuilding —
/// [`Self::add_candidate`] / [`Self::remove_candidate`] edit the candidate
/// set with **stable ids** (existing [`CandidateBitset`]s stay valid), and
/// [`Self::add_query`] / [`Self::retire_query`] rotate queries, reusing
/// resident cells when a query (same cell-identity key,
/// [`crate::key::query_cell_key`]) is already in the matrix. Cold builds
/// and the bulk part of [`Self::add_queries`] run on all cores
/// ([`build_threads`]); parallel results are bit-identical to serial ones
/// because cells are computed independently per query and written to
/// disjoint slots.
pub struct CostMatrix<'a> {
    inum: &'a Inum<'a>,
    /// The owned cell payload — everything a lookup needs, with no borrow
    /// of the INUM instance, so snapshots of it can outlive `'a`.
    core: MatrixCore,
    /// The publication slot this matrix's snapshots rotate through; shared
    /// with every [`MatrixReader`] handed out by [`Self::reader`].
    slot: Arc<PublishSlot>,
    /// When `Some`, every mutation records a [`MatrixEdit`] here — the
    /// source of the durable edit log. `None` (the default) makes
    /// journaling free for non-durable sessions. Must be `None` while a
    /// log is being replayed, or the replay would re-record itself.
    journal: Option<Vec<MatrixEdit>>,
}

/// Writer-side name for [`CostMatrix`]: the mutable half of the
/// reader/writer split. Advisors and COLT mutate a `MatrixBuilder` and
/// [`CostMatrix::publish`] immutable [`crate::MatrixSnapshot`] generations
/// for concurrent readers.
pub type MatrixBuilder<'a> = CostMatrix<'a>;

/// The owned payload of a [`CostMatrix`]: cells, candidate registry,
/// partition registries and the query mirror — everything a configuration
/// lookup touches, and nothing borrowed from the owning [`Inum`]. Cloning
/// is cheap relative to a rebuild: per-query cell blocks and per-split
/// fraction tables are behind `Arc`s and shared with previous clones
/// (copy-on-write at the writer's mutation sites).
#[derive(Clone)]
pub(crate) struct MatrixCore {
    /// Optimizer cost parameters (copied from the INUM's optimizer), so
    /// partition re-costing needs no `Inum` borrow.
    params: CostParams,
    /// Query mirror: entry `i` is query slot `i`'s query (entries of
    /// retired slots are stale until the slot is reused).
    workload: Workload,
    /// Candidate registry; `None` marks a removed id (reusable, never
    /// matched by lookups).
    indexes: Vec<Option<Index>>,
    /// Live candidate id per index — the O(1) dedupe behind
    /// [`CostMatrix::candidate_id`]/[`CostMatrix::add_candidate`] (first
    /// registration wins when `build` was handed duplicates).
    id_by_index: HashMap<Index, usize>,
    queries: Vec<Arc<QueryMatrix>>,
    /// Removed candidate ids available for reuse.
    free_candidates: Vec<usize>,
    /// Retired query slots available for reuse.
    free_queries: Vec<usize>,
    /// Bumped whenever the slot-id ↔ query binding changes (a retire or an
    /// install); weight edits and candidate edits do not count. Lets
    /// consumers cache per-slot derived values and revalidate in O(1).
    generation: u64,
    /// Registered vertical-fragment candidates (id = position; never
    /// mutated after registration, so clones share them plainly).
    fragments: Vec<Arc<Fragment>>,
    /// Registered horizontal-split candidates (id = position).
    splits: Vec<Arc<Split>>,
    /// Fragment ids per table (indexed by `TableId.0`), for the
    /// replication set-cover path and `joint_design_of`.
    frags_by_table: Vec<Vec<usize>>,
}

/// Compute one query's full matrix row set (skeleton requirements, base
/// cells, and one [`CandCosts`] per contributing candidate). Returns the
/// matrix and the number of cells costed. Pure per-query work — the unit
/// the parallel build distributes.
fn compute_query_matrix(
    inum: &Inum<'_>,
    q: &Query,
    weight: f64,
    indexes: &[Option<Index>],
) -> (QueryMatrix, u64) {
    let catalog = inum.catalog();
    let params = &inum.optimizer().params;
    let empty = PhysicalDesign::empty();
    let mut cells = 0u64;
    let skeletons = inum.skeletons(q);
    let ctx = AccessContext {
        catalog,
        design: &empty,
        params,
        query: q,
    };
    let n_slots = q.slot_count() as usize;

    // Distinct required orders per slot across the skeleton set.
    let mut slot_orders: Vec<Vec<&[u16]>> = vec![Vec::new(); n_slots];
    for sk in skeletons.iter() {
        for (s, req) in sk.slot_orders.iter().enumerate() {
            if let Some(o) = req {
                if !slot_orders[s].contains(&o.as_slice()) {
                    slot_orders[s].push(o.as_slice());
                }
            }
        }
    }
    let reqs: Vec<Vec<u32>> = skeletons
        .iter()
        .map(|sk| {
            sk.slot_orders
                .iter()
                .enumerate()
                .map(|(s, req)| match req {
                    None => NO_ORDER,
                    Some(o) => slot_orders[s]
                        .iter()
                        .position(|x| *x == o.as_slice())
                        .expect("order collected above") as u32,
                })
                .collect()
        })
        .collect();
    let internal: Vec<f64> = skeletons.iter().map(|sk| sk.internal_cost).collect();
    debug_assert!(
        internal.iter().all(|c| c.is_finite()),
        "skeleton internal costs must be finite"
    );

    let mut slots = Vec::with_capacity(n_slots);
    for slot in 0..q.slot_count() {
        let s = slot as usize;
        let prof = SlotProfile::build(&ctx, slot, &[]);
        let base_target = access::fetch_target(&ctx, slot, &prof.needed_cols);
        let seq_cost = access::seq_scan_cost(
            params,
            prof.base_rows,
            prof.n_filters,
            base_target,
            prof.h_frac,
        );
        cells += 1;
        let required: Vec<Vec<QueryColumn>> = slot_orders[s]
            .iter()
            .map(|o| o.iter().map(|&c| QueryColumn::new(slot, c)).collect())
            .collect();
        assert!(
            required.len() <= MAX_SLOT_ORDERS,
            "order-satisfaction masks support {MAX_SLOT_ORDERS} required orders per slot"
        );
        let base_ordered: Vec<f64> = required
            .iter()
            .map(|req| {
                if order_satisfies(&[], req, &prof.eq_bound) {
                    seq_cost
                } else {
                    f64::INFINITY
                }
            })
            .collect();
        let table = q.table_of(slot);
        let needed_mask = column_mask(&prof.needed_cols);
        let mut cands = Vec::new();
        for (id, idx) in indexes.iter().enumerate() {
            let Some(idx) = idx else { continue };
            if idx.table != table {
                continue;
            }
            if let Some(cc) =
                cost_candidate_on_slot(params, &ctx, &prof, &required, base_target, id, idx)
            {
                cands.push(cc);
            }
            cells += 1;
        }
        slots.push(SlotCosts {
            table,
            needed_mask,
            base_rows: prof.base_rows,
            n_filters: prof.n_filters,
            base_target,
            base_unordered: seq_cost,
            base_ordered,
            slot_orders: slot_orders[s].iter().map(|o| o.to_vec()).collect(),
            cands,
        });
    }
    (
        QueryMatrix {
            weight,
            key: query_key(q),
            active: true,
            internal,
            reqs,
            slots,
        },
        cells,
    )
}

/// Cost one candidate index on one slot: enumerate its path profiles under
/// `base_target` (the slot's unpartitioned fetch target) and reduce them
/// to the per-order minima. `None` when the index contributes no path on
/// the slot. Shared verbatim by the cold build and
/// [`CostMatrix::add_candidate`], so incremental cells are bit-identical
/// to freshly built ones.
fn cost_candidate_on_slot(
    params: &pgdesign_optimizer::CostParams,
    ctx: &AccessContext<'_>,
    prof: &SlotProfile,
    required: &[Vec<QueryColumn>],
    base_target: FetchTarget,
    id: usize,
    idx: &Index,
) -> Option<CandCosts> {
    let profiles = access::index_path_profiles(ctx, prof, idx, false);
    if profiles.is_empty() {
        return None; // contributes nothing on this slot
    }
    let paths: Vec<CandPath> = profiles
        .into_iter()
        .map(|profile| {
            let mut order_ok = 0u64;
            for (o, req) in required.iter().enumerate() {
                if order_satisfies(&profile.order, req, &prof.eq_bound) {
                    order_ok |= 1 << o;
                }
            }
            CandPath { profile, order_ok }
        })
        .collect();
    let costs: Vec<f64> = paths
        .iter()
        .map(|p| p.profile.cost(params, base_target))
        .collect();
    let unordered = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let ordered: Vec<f64> = (0..required.len())
        .map(|o| {
            paths
                .iter()
                .zip(&costs)
                .filter(|(p, _)| p.order_ok & (1 << o) != 0)
                .map(|(_, &c)| c)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    Some(CandCosts {
        id,
        unordered,
        ordered,
        paths,
    })
}

/// Compute query matrices for a batch of queries, fanning out over
/// `threads` scoped workers. Queries are split into contiguous chunks and
/// results concatenated in input order, and each query's cells depend on
/// nothing but that query — so the output is bit-identical to the serial
/// (`threads == 1`) computation.
fn compute_query_matrices(
    inum: &Inum<'_>,
    entries: &[(&Query, f64)],
    indexes: &[Option<Index>],
    threads: usize,
) -> Vec<(QueryMatrix, u64)> {
    let nt = threads.clamp(1, entries.len().max(1));
    if nt <= 1 {
        return entries
            .iter()
            .map(|&(q, w)| compute_query_matrix(inum, q, w, indexes))
            .collect();
    }
    let chunk = entries.len().div_ceil(nt);
    std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|ch| {
                scope.spawn(move || {
                    ch.iter()
                        .map(|&(q, w)| compute_query_matrix(inum, q, w, indexes))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("matrix build worker panicked"))
            .collect()
    })
}

/// [`compute_query_matrices`] under a [`WorkBudget`]: each worker pays
/// for a query *before* computing it and stops claiming units once the
/// budget is exhausted — completed entries come back `Some`, skipped
/// ones `None`, aligned with the input. Completed cells are never
/// discarded (the budget is checked **between** per-query cell units,
/// never inside one), which is what lets a deadline-cancelled build
/// commit its finished work and resume the remainder later.
fn compute_query_matrices_budgeted(
    inum: &Inum<'_>,
    entries: &[(&Query, f64)],
    indexes: &[Option<Index>],
    threads: usize,
    budget: &WorkBudget,
) -> Vec<Option<(QueryMatrix, u64)>> {
    let one = |&(q, w): &(&Query, f64)| -> Option<(QueryMatrix, u64)> {
        if !budget.try_consume() {
            return None;
        }
        Some(compute_query_matrix(inum, q, w, indexes))
    };
    let nt = threads.clamp(1, entries.len().max(1));
    if nt <= 1 {
        return entries.iter().map(one).collect();
    }
    let chunk = entries.len().div_ceil(nt);
    std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|ch| {
                let one = &one;
                scope.spawn(move || ch.iter().map(one).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("matrix build worker panicked"))
            .collect()
    })
}

/// Compute the new cells a candidate batch adds to each active query:
/// per query, the `(slot index, CandCosts)` pairs to append (in batch
/// order, so per-slot candidate order matches one-at-a-time registration)
/// plus the number of cells costed. The per-query unit the bulk
/// [`CostMatrix::add_candidates`] distributes over scoped workers — cells
/// are bit-identical to the serial path because each depends on nothing
/// but its own `(query, slot, candidate)` inputs.
fn compute_candidate_cells(
    inum: &Inum<'_>,
    core: &MatrixCore,
    active: &[usize],
    new: &[(usize, Index)],
    threads: usize,
) -> Vec<(Vec<(usize, CandCosts)>, u64)> {
    let one = |qi: usize| -> (Vec<(usize, CandCosts)>, u64) {
        let q = &core.workload.entries[qi].query;
        let qm = &core.queries[qi];
        let catalog = inum.catalog();
        let params = &inum.optimizer().params;
        let empty = PhysicalDesign::empty();
        let ctx = AccessContext {
            catalog,
            design: &empty,
            params,
            query: q,
        };
        let mut out = Vec::new();
        let mut cells = 0u64;
        for (s, slot) in qm.slots.iter().enumerate() {
            if !new.iter().any(|(_, idx)| idx.table == slot.table) {
                continue;
            }
            let slot_u16 = s as u16;
            let prof = SlotProfile::build(&ctx, slot_u16, &[]);
            let required: Vec<Vec<QueryColumn>> = slot
                .slot_orders
                .iter()
                .map(|o| o.iter().map(|&c| QueryColumn::new(slot_u16, c)).collect())
                .collect();
            for (id, idx) in new {
                if idx.table != slot.table {
                    continue;
                }
                cells += 1;
                if let Some(cc) = cost_candidate_on_slot(
                    params,
                    &ctx,
                    &prof,
                    &required,
                    slot.base_target,
                    *id,
                    idx,
                ) {
                    out.push((s, cc));
                }
            }
        }
        (out, cells)
    };
    let nt = threads.clamp(1, active.len().max(1));
    if nt <= 1 {
        return active.iter().map(|&qi| one(qi)).collect();
    }
    let chunk = active.len().div_ceil(nt);
    std::thread::scope(|scope| {
        let handles: Vec<_> = active
            .chunks(chunk)
            .map(|ch| {
                let one = &one;
                scope.spawn(move || ch.iter().map(|&qi| one(qi)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("candidate build worker panicked"))
            .collect()
    })
}

impl<'a> CostMatrix<'a> {
    /// Build the matrix: for every query, fetch (or build) its cached
    /// skeletons, then cost the base access and each candidate index's
    /// access once per slot and distinct required order. Queries are
    /// distributed over [`build_threads`] workers; the result is
    /// bit-identical to a serial build.
    pub fn build(inum: &'a Inum<'a>, workload: &Workload, indexes: &[Index]) -> Self {
        Self::build_with_threads(inum, workload, indexes, build_threads())
    }

    /// [`Self::build`] with an explicit worker count (1 = serial). The
    /// suite pins serial-vs-parallel equality through this entry.
    pub fn build_with_threads(
        inum: &'a Inum<'a>,
        workload: &Workload,
        indexes: &[Index],
        threads: usize,
    ) -> Self {
        let t0 = Instant::now();
        let idx: Vec<Option<Index>> = indexes.iter().cloned().map(Some).collect();
        let entries: Vec<(&Query, f64)> = workload.iter().collect();
        let computed = compute_query_matrices(inum, &entries, &idx, threads);
        let mut cells = 0u64;
        let mut queries = Vec::with_capacity(computed.len());
        for (qm, c) in computed {
            cells += c;
            queries.push(Arc::new(qm));
        }
        inum.note_matrix_build(cells, t0.elapsed().as_nanos() as u64);
        let n_tables = inum.catalog().schema.tables().count();
        let mut id_by_index = HashMap::with_capacity(idx.len());
        for (id, i) in idx.iter().enumerate() {
            if let Some(i) = i {
                id_by_index.entry(i.clone()).or_insert(id);
            }
        }
        let core = MatrixCore {
            params: inum.optimizer().params,
            workload: workload.clone(),
            indexes: idx,
            id_by_index,
            queries,
            free_candidates: Vec::new(),
            free_queries: Vec::new(),
            generation: 0,
            fragments: Vec::new(),
            splits: Vec::new(),
            frags_by_table: vec![Vec::new(); n_tables],
        };
        // Generation 0 is published at build time, so readers acquired
        // before the first explicit `publish` still see a complete matrix.
        let slot = Arc::new(PublishSlot::new(core.clone()));
        CostMatrix {
            inum,
            core,
            slot,
            journal: None,
        }
    }

    /// [`Self::build`] under a [`WorkBudget`] — the cooperatively
    /// cancellable cold build. Workers check the budget between
    /// per-query cell units; queries whose cells completed before
    /// exhaustion are committed into the returned matrix, and the
    /// remainder comes back as `(query, weight)` pairs the caller
    /// records as pending and resumes later (e.g. next epoch, through
    /// [`Self::add_queries_budgeted`]). With an
    /// [`WorkBudget::unlimited`] budget the deferred list is empty and
    /// the committed matrix costs identically to [`Self::build`].
    pub fn build_budgeted(
        inum: &'a Inum<'a>,
        workload: &Workload,
        indexes: &[Index],
        threads: usize,
        budget: &WorkBudget,
    ) -> (Self, Vec<(Query, f64)>) {
        let mut matrix = Self::build_with_threads(inum, &Workload::new(), indexes, threads);
        let entries: Vec<(&Query, f64)> = workload.iter().collect();
        let ids =
            matrix.add_queries_budgeted_with_threads(entries.iter().copied(), budget, threads);
        let deferred = ids
            .iter()
            .zip(&entries)
            .filter(|(id, _)| id.is_none())
            .map(|(_, &(q, w))| (q.clone(), w))
            .collect();
        (matrix, deferred)
    }

    /// Adopt an already-materialized core — the durable-restore entry.
    /// Unlike [`Self::build`] this computes nothing and does **not**
    /// count as a matrix build in [`crate::MatrixStats`]: the cells were
    /// paid for in a previous process and arrive from disk.
    pub(crate) fn from_core(inum: &'a Inum<'a>, core: MatrixCore, generation: u64) -> Self {
        let slot = Arc::new(PublishSlot::new_at(core.clone(), generation));
        CostMatrix {
            inum,
            core,
            slot,
            journal: None,
        }
    }

    // ---- Edit journaling (the durable edit-log source) ----

    /// Start recording mutations as [`MatrixEdit`]s (idempotent).
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// Stop recording and drop anything recorded.
    pub fn disable_journal(&mut self) {
        self.journal = None;
    }

    /// Drain the recorded edits (journaling stays enabled). Empty when
    /// journaling is off.
    pub fn take_journal(&mut self) -> Vec<MatrixEdit> {
        match &mut self.journal {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    fn record<F: FnOnce() -> MatrixEdit>(&mut self, edit: F) {
        if let Some(j) = &mut self.journal {
            j.push(edit());
        }
    }

    /// Re-apply one recorded edit through the same public mutations that
    /// produced it. Given an identical starting state, applying a journal
    /// in order reproduces the original matrix exactly: every mutation is
    /// deterministic in its inputs (dedupe maps, LIFO free-list recycling
    /// and parallel cell computation included). The journal must be
    /// disabled while replaying.
    pub fn apply_edit(&mut self, edit: &MatrixEdit) {
        debug_assert!(self.journal.is_none(), "replaying into an active journal");
        match edit {
            MatrixEdit::AddCandidates(indexes) => {
                self.add_candidates(indexes);
            }
            MatrixEdit::RemoveCandidate(id) => self.remove_candidate(*id),
            MatrixEdit::AddQueries(entries) => {
                self.add_queries(entries.iter().map(|(q, w)| (q, *w)));
            }
            MatrixEdit::RetireQuery(id) => self.retire_query(*id),
            MatrixEdit::SetQueryWeight(id, w) => self.set_query_weight(*id, *w),
            MatrixEdit::RegisterFragment(table, columns) => {
                self.register_fragment(*table, columns);
            }
            MatrixEdit::RegisterSplit(hp) => {
                self.register_split(hp.clone());
            }
            MatrixEdit::Publish => {
                self.publish();
            }
        }
    }

    /// The owning INUM instance (the slow-path oracle). The returned
    /// borrow is tied to `&self`, not to `'a`: long-lived holders (e.g. a
    /// session type that heap-pins the INUM and unsafely stretches its
    /// lifetime) must not let the stretched reference escape through this
    /// accessor.
    pub fn inum(&self) -> &Inum<'a> {
        self.inum
    }

    /// The catalog the matrix's costs were computed against. Metadata-only
    /// access (schema, statistics) for sizing and build-time models —
    /// callers that only need this must not take [`CostMatrix::inum`],
    /// which grants what-if costing.
    pub fn catalog(&self) -> &pgdesign_catalog::Catalog {
        self.inum.catalog()
    }

    /// The cost-model constants the matrix's cells were computed with
    /// (scan/sort parameters for build-time estimates). Like
    /// [`CostMatrix::catalog`], this is metadata, not costing.
    pub fn cost_params(&self) -> &CostParams {
        &self.inum.optimizer().params
    }

    /// The matrix's queries, aligned with query ids: entry `i` is query
    /// slot `i`. Entries of retired slots are stale (their weight is
    /// zeroed); on a freshly built matrix this is exactly the workload the
    /// matrix was built for.
    pub fn workload(&self) -> &Workload {
        self.core.workload()
    }

    /// Number of query slots (active + retired); `cost` accepts any id
    /// below this.
    pub fn n_queries(&self) -> usize {
        self.core.n_queries()
    }

    /// Number of candidate id slots (live + removed) — the id space
    /// [`CandidateBitset`]s range over.
    pub fn n_candidates(&self) -> usize {
        self.core.n_candidates()
    }

    /// The live candidates as `(id, index)` pairs, ascending by id.
    pub fn candidates(&self) -> impl Iterator<Item = (usize, &Index)> {
        self.core.candidates()
    }

    /// The live candidate with id `id` (`None` for removed ids).
    pub fn candidate(&self, id: usize) -> Option<&Index> {
        self.core.candidate(id)
    }

    /// The id of the live candidate equal to `index`, if registered
    /// (O(1) hash lookup).
    pub fn candidate_id(&self, index: &Index) -> Option<usize> {
        self.core.candidate_id(index)
    }

    /// The *active* queries as an owned `(query, weight)` snapshot — what
    /// advisors enumerate candidates from. Unlike [`Self::workload`],
    /// retired slots are excluded, so the stale queries of a long-lived
    /// session matrix cannot steer candidate analyses.
    pub fn active_workload(&self) -> Workload {
        self.core.active_workload()
    }

    /// Ids of the active (non-retired) queries, ascending.
    pub fn active_query_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.core.active_query_ids()
    }

    /// Whether query slot `id` is active (false for retired slots and
    /// out-of-range ids).
    pub fn query_active(&self, id: usize) -> bool {
        self.core.query_active(id)
    }

    /// Workload weight of query slot `id` (0 for retired slots).
    pub fn query_weight(&self, id: usize) -> f64 {
        self.core.query_weight(id)
    }

    /// Overwrite the weight of an active query slot (no-op on retired or
    /// out-of-range ids). [`Self::add_queries`] *adds* weights on reuse —
    /// a rotating consumer that wants per-epoch rather than cumulative
    /// weights resets them with this after each rotation (COLT does).
    pub fn set_query_weight(&mut self, id: usize, weight: f64) {
        self.record(|| MatrixEdit::SetQueryWeight(id, weight));
        if let Some(qm) = self.core.queries.get_mut(id) {
            if qm.active {
                Arc::make_mut(qm).weight = weight;
                self.core.workload.entries[id].weight = weight;
            }
        }
    }

    // ---- Snapshot publication (the reader/writer split) ----

    /// Publish the current matrix state as a new immutable snapshot
    /// generation and return it. Readers acquired via [`Self::reader`]
    /// keep serving their pinned generation until they
    /// [`MatrixReader::refresh`]; the swap itself is guarded by the
    /// writer-side lock, readers never block. Generations are strictly
    /// monotonic, starting from 0 at build time.
    pub fn publish(&mut self) -> u64 {
        self.record(|| MatrixEdit::Publish);
        self.slot.publish(self.core.clone())
    }

    /// A cheap, `Clone + Send` read handle pinned to the latest published
    /// generation. Lookups through the handle are lock-free (no `Inum`
    /// involvement at all) and internally consistent until the holder
    /// chooses to [`MatrixReader::refresh`].
    pub fn reader(&self) -> MatrixReader {
        MatrixReader::new(self.slot.current(), Arc::clone(&self.slot))
    }

    /// The latest published snapshot generation (0 right after build).
    pub fn published_generation(&self) -> u64 {
        self.slot.published()
    }

    /// Configuration-cost lookups served from published snapshots (all
    /// reader handles combined) — the reader-side analogue of
    /// [`MatrixStats::lookups`].
    pub fn reader_lookups(&self) -> u64 {
        self.slot.reader_lookups()
    }

    /// The subset of [`Self::reader_lookups`] that costed at least one
    /// partition candidate.
    pub fn reader_partition_lookups(&self) -> u64 {
        self.slot.reader_partition_lookups()
    }

    // ---- Incremental maintenance ----

    /// Register a candidate index, computing only its own cells (one per
    /// active query slot on its table). Ids are **stable**: existing
    /// candidates keep their ids (so existing [`CandidateBitset`]s stay
    /// valid) and re-registering an already-present index returns its
    /// existing id with every resident cell counted as reused. Removed ids
    /// are recycled.
    pub fn add_candidate(&mut self, index: &Index) -> usize {
        self.add_candidates(std::slice::from_ref(index))[0]
    }

    /// Bulk [`Self::add_candidate`]: register a batch of candidate indexes
    /// in one pass, fanning the cell work out over [`build_threads`]
    /// scoped workers (one unit per active query, like the cold build).
    /// Returns the id per input, aligned. Semantics match a one-at-a-time
    /// loop exactly — same dedupe (against residents *and* within the
    /// batch), same LIFO id recycling, same per-slot candidate order, and
    /// bit-identical cells (each cell is a pure function of its own
    /// `(query, slot, candidate)` inputs).
    pub fn add_candidates(&mut self, indexes: &[Index]) -> Vec<usize> {
        self.add_candidates_with_threads(indexes, build_threads())
    }

    /// [`Self::add_candidates`] with an explicit worker count (1 =
    /// serial). The suite pins serial-vs-parallel equality through this
    /// entry.
    pub fn add_candidates_with_threads(&mut self, indexes: &[Index], threads: usize) -> Vec<usize> {
        if indexes.is_empty() {
            return Vec::new();
        }
        self.record(|| MatrixEdit::AddCandidates(indexes.to_vec()));
        let t0 = Instant::now();
        let mut ids = Vec::with_capacity(indexes.len());
        let mut reused = 0u64;
        // Registration order matters: ids are handed out (LIFO from the
        // free list, then fresh) in input order, and later duplicates in
        // the batch dedupe against earlier entries, exactly as sequential
        // `add_candidate` calls would.
        let mut new: Vec<(usize, Index)> = Vec::new();
        for index in indexes {
            if let Some(id) = self.core.candidate_id(index) {
                reused += self.core.active_slots_on(index.table);
                ids.push(id);
                continue;
            }
            let id = match self.core.free_candidates.pop() {
                Some(id) => id,
                None => {
                    self.core.indexes.push(None);
                    self.core.indexes.len() - 1
                }
            };
            self.core.indexes[id] = Some(index.clone());
            self.core.id_by_index.insert(index.clone(), id);
            ids.push(id);
            new.push((id, index.clone()));
        }
        if new.is_empty() {
            self.inum.note_matrix_incremental(0, reused, 0);
            return ids;
        }
        let active: Vec<usize> = self.core.active_query_ids().collect();
        let computed = compute_candidate_cells(self.inum, &self.core, &active, &new, threads);
        let mut cells = 0u64;
        for (&qi, (additions, c)) in active.iter().zip(computed) {
            cells += c;
            if additions.is_empty() {
                continue;
            }
            let qm = Arc::make_mut(&mut self.core.queries[qi]);
            for (s, cc) in additions {
                qm.slots[s].cands.push(cc);
            }
        }
        self.inum
            .note_matrix_incremental(cells, reused, t0.elapsed().as_nanos() as u64);
        ids
    }

    /// [`Self::add_candidates`] under a [`WorkBudget`]: one budget unit
    /// per *new* candidate (residents and within-batch duplicates dedupe
    /// for free, as always). A candidate is committed whole — all of its
    /// cells across every active query — or not at all, so a bitset can
    /// never select a partially-celled candidate and cost it wrongly.
    /// Returns the id per input, `None` for deferred entries; the
    /// journal records exactly the committed subset, so replaying the
    /// edit log reproduces the budgeted state bit-for-bit.
    pub fn add_candidates_budgeted(
        &mut self,
        indexes: &[Index],
        budget: &WorkBudget,
    ) -> Vec<Option<usize>> {
        self.add_candidates_budgeted_with_threads(indexes, budget, build_threads())
    }

    /// [`Self::add_candidates_budgeted`] with an explicit worker count.
    pub fn add_candidates_budgeted_with_threads(
        &mut self,
        indexes: &[Index],
        budget: &WorkBudget,
        threads: usize,
    ) -> Vec<Option<usize>> {
        if indexes.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let active: Vec<usize> = self.core.active_query_ids().collect();
        let mut ids: Vec<Option<usize>> = vec![None; indexes.len()];
        let mut committed: Vec<usize> = Vec::new();
        // Deferred uniques, so a later duplicate of a deferred candidate
        // defers too instead of re-attempting (and possibly committing a
        // different subset than the journal records).
        let mut deferred: HashMap<&Index, ()> = HashMap::new();
        let mut reused = 0u64;
        let mut cells = 0u64;
        for (i, index) in indexes.iter().enumerate() {
            if let Some(id) = self.core.candidate_id(index) {
                // Resident — or a duplicate of an earlier committed batch
                // entry, which by now is resident as well.
                reused += self.core.active_slots_on(index.table);
                ids[i] = Some(id);
                committed.push(i);
                continue;
            }
            if deferred.contains_key(index) {
                continue;
            }
            if !budget.try_consume() {
                deferred.insert(index, ());
                continue;
            }
            let id = match self.core.free_candidates.pop() {
                Some(id) => id,
                None => {
                    self.core.indexes.push(None);
                    self.core.indexes.len() - 1
                }
            };
            self.core.indexes[id] = Some(index.clone());
            self.core.id_by_index.insert(index.clone(), id);
            let new = [(id, index.clone())];
            let computed = compute_candidate_cells(self.inum, &self.core, &active, &new, threads);
            for (&qi, (additions, c)) in active.iter().zip(computed) {
                cells += c;
                if additions.is_empty() {
                    continue;
                }
                let qm = Arc::make_mut(&mut self.core.queries[qi]);
                for (s, cc) in additions {
                    qm.slots[s].cands.push(cc);
                }
            }
            ids[i] = Some(id);
            committed.push(i);
        }
        // Journal exactly what was installed: a replay must reproduce the
        // budgeted state, not the state the full batch would have built.
        if !committed.is_empty() {
            self.record(|| {
                MatrixEdit::AddCandidates(committed.iter().map(|&i| indexes[i].clone()).collect())
            });
        }
        self.inum
            .note_matrix_incremental(cells, reused, t0.elapsed().as_nanos() as u64);
        ids
    }

    /// Remove a candidate: its cells are dropped from every query slot and
    /// its id is recycled for later [`Self::add_candidate`] calls. All
    /// other ids are untouched, so existing bitsets stay valid (a bitset
    /// still holding the removed id simply no longer matches any cell).
    /// No-op for already-removed or out-of-range ids.
    pub fn remove_candidate(&mut self, id: usize) {
        if self.core.indexes.get(id).is_none_or(|i| i.is_none()) {
            return;
        }
        self.record(|| MatrixEdit::RemoveCandidate(id));
        if let Some(idx) = self.core.indexes[id].take() {
            // Only unmap if this id owns the entry (a duplicate handed to
            // `build` maps to its first id) — and if another live duplicate
            // exists, re-point the map so the index stays findable.
            if self.core.id_by_index.get(&idx) == Some(&id) {
                let other = self
                    .core
                    .indexes
                    .iter()
                    .position(|i| i.as_ref() == Some(&idx));
                match other {
                    Some(oid) => {
                        self.core.id_by_index.insert(idx, oid);
                    }
                    None => {
                        self.core.id_by_index.remove(&idx);
                    }
                }
            }
        }
        self.core.free_candidates.push(id);
        for qm in &mut self.core.queries {
            // Copy-on-write: leave queries that never held the candidate
            // shared with published snapshots.
            if qm
                .slots
                .iter()
                .any(|slot| slot.cands.iter().any(|c| c.id == id))
            {
                let qm = Arc::make_mut(qm);
                for slot in &mut qm.slots {
                    if let Some(pos) = slot.cands.iter().position(|c| c.id == id) {
                        slot.cands.remove(pos);
                    }
                }
            }
        }
    }

    /// Add one query (see [`Self::add_queries`]).
    pub fn add_query(&mut self, query: &Query, weight: f64) -> usize {
        self.add_queries([(query, weight)])[0]
    }

    /// Add queries to the matrix, reusing resident cells where possible:
    /// a query whose cell-identity key matches an *active* slot reuses
    /// that slot (weights add, all its cells count as reused, nothing is
    /// even cloned); new queries have their cells computed — in parallel
    /// over [`build_threads`] workers for the bulk — and land in retired
    /// slots first, fresh slots after. Returns the query id per input,
    /// aligned.
    pub fn add_queries<'q, I: IntoIterator<Item = (&'q Query, f64)>>(
        &mut self,
        entries: I,
    ) -> Vec<usize> {
        let entries: Vec<(&Query, f64)> = entries.into_iter().collect();
        if entries.is_empty() {
            return Vec::new();
        }
        self.record(|| {
            MatrixEdit::AddQueries(entries.iter().map(|&(q, w)| (q.clone(), w)).collect())
        });
        let t0 = Instant::now();
        let mut reused = 0u64;
        let mut computed_cells = 0u64;

        // Resolve each entry: an existing active slot, a duplicate of an
        // earlier batch entry, or a pending computation.
        enum Resolved {
            Existing(usize),
            SameAs(usize),
            Pending,
        }
        let keys: Vec<u64> = entries.iter().map(|(q, _)| query_key(q)).collect();
        let resident: HashMap<u64, usize> = self
            .core
            .queries
            .iter()
            .enumerate()
            .filter(|(_, qm)| qm.active)
            .map(|(id, qm)| (qm.key, id))
            .collect();
        let mut first_of: HashMap<u64, usize> = HashMap::new();
        let mut resolved: Vec<Resolved> = Vec::with_capacity(entries.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(&id) = resident.get(key) {
                resolved.push(Resolved::Existing(id));
            } else if let Some(&j) = first_of.get(key) {
                resolved.push(Resolved::SameAs(j));
            } else {
                first_of.insert(*key, i);
                pending.push(i);
                resolved.push(Resolved::Pending);
            }
        }

        // Compute the misses (the bulk) in parallel.
        let refs: Vec<(&Query, f64)> = pending.iter().map(|&i| entries[i]).collect();
        let computed =
            compute_query_matrices(self.inum, &refs, &self.core.indexes, build_threads());

        // Install the computed matrices (retired slots first), then wire
        // up ids for every input entry.
        let mut ids: Vec<usize> = vec![usize::MAX; entries.len()];
        for (&i, (qm, cells)) in pending.iter().zip(computed) {
            computed_cells += cells;
            ids[i] = self.install_query(entries[i].0.clone(), qm);
        }
        // Per-table live candidate counts, shared by the reuse accounting
        // below (a per-query recount would cost a visible fraction of the
        // cell work it is crediting).
        let mut cands_on: HashMap<TableId, u64> = HashMap::new();
        for (_, idx) in self.candidates() {
            *cands_on.entry(idx.table).or_insert(0) += 1;
        }
        let cell_work = |queries: &[Arc<QueryMatrix>], id: usize| -> u64 {
            queries[id]
                .slots
                .iter()
                .map(|s| 1 + cands_on.get(&s.table).copied().unwrap_or(0))
                .sum()
        };
        for (i, r) in resolved.iter().enumerate() {
            match *r {
                Resolved::Existing(id) => {
                    let w = self.core.queries[id].weight + entries[i].1;
                    Arc::make_mut(&mut self.core.queries[id]).weight = w;
                    self.core.workload.entries[id].weight = w;
                    reused += cell_work(&self.core.queries, id);
                    ids[i] = id;
                }
                Resolved::SameAs(j) => {
                    let id = ids[j];
                    let w = self.core.queries[id].weight + entries[i].1;
                    Arc::make_mut(&mut self.core.queries[id]).weight = w;
                    self.core.workload.entries[id].weight = w;
                    // A fresh build would have costed this duplicate entry
                    // separately; sharing the slot avoids that work.
                    reused += cell_work(&self.core.queries, id);
                    ids[i] = id;
                }
                Resolved::Pending => {}
            }
        }
        self.inum
            .note_matrix_incremental(computed_cells, reused, t0.elapsed().as_nanos() as u64);
        ids
    }

    /// [`Self::add_queries`] under a [`WorkBudget`]: one budget unit per
    /// query that actually needs its cells computed (reuse of an active
    /// slot and within-batch duplicates stay free). Entries whose cells
    /// completed before exhaustion commit exactly as the unbudgeted path
    /// would; the rest return `None` and are the caller's pending
    /// remainder. A duplicate of a deferred entry defers with it. The
    /// journal records only the committed subset, so edit-log replay
    /// reproduces the budgeted state bit-for-bit.
    pub fn add_queries_budgeted<'q, I: IntoIterator<Item = (&'q Query, f64)>>(
        &mut self,
        entries: I,
        budget: &WorkBudget,
    ) -> Vec<Option<usize>> {
        self.add_queries_budgeted_with_threads(entries, budget, build_threads())
    }

    /// [`Self::add_queries_budgeted`] with an explicit worker count.
    pub fn add_queries_budgeted_with_threads<'q, I: IntoIterator<Item = (&'q Query, f64)>>(
        &mut self,
        entries: I,
        budget: &WorkBudget,
        threads: usize,
    ) -> Vec<Option<usize>> {
        let entries: Vec<(&Query, f64)> = entries.into_iter().collect();
        if entries.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let mut reused = 0u64;
        let mut computed_cells = 0u64;

        // Resolution mirrors `add_queries` exactly; only the Pending
        // entries cost budget units.
        enum Resolved {
            Existing(usize),
            SameAs(usize),
            Pending,
        }
        let keys: Vec<u64> = entries.iter().map(|(q, _)| query_key(q)).collect();
        let resident: HashMap<u64, usize> = self
            .core
            .queries
            .iter()
            .enumerate()
            .filter(|(_, qm)| qm.active)
            .map(|(id, qm)| (qm.key, id))
            .collect();
        let mut first_of: HashMap<u64, usize> = HashMap::new();
        let mut resolved: Vec<Resolved> = Vec::with_capacity(entries.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if let Some(&id) = resident.get(key) {
                resolved.push(Resolved::Existing(id));
            } else if let Some(&j) = first_of.get(key) {
                resolved.push(Resolved::SameAs(j));
            } else {
                first_of.insert(*key, i);
                pending.push(i);
                resolved.push(Resolved::Pending);
            }
        }

        // Compute the misses under the budget; `None` means deferred.
        let refs: Vec<(&Query, f64)> = pending.iter().map(|&i| entries[i]).collect();
        let computed =
            compute_query_matrices_budgeted(self.inum, &refs, &self.core.indexes, threads, budget);

        // Journal exactly the committed subset in input order — an entry
        // commits when it resolved to a resident slot, its own cells
        // completed, or it duplicates a committed entry.
        let mut commits: Vec<bool> = vec![false; entries.len()];
        for (slot, &i) in pending.iter().enumerate() {
            commits[i] = computed[slot].is_some();
        }
        for (i, r) in resolved.iter().enumerate() {
            match *r {
                Resolved::Existing(_) => commits[i] = true,
                Resolved::SameAs(j) => commits[i] = commits[j],
                Resolved::Pending => {}
            }
        }
        if commits.iter().any(|&c| c) {
            self.record(|| {
                MatrixEdit::AddQueries(
                    entries
                        .iter()
                        .zip(&commits)
                        .filter(|(_, &c)| c)
                        .map(|(&(q, w), _)| (q.clone(), w))
                        .collect(),
                )
            });
        }

        // Install completed matrices (retired slots first, in input
        // order), then wire up weights and ids — same flow as the
        // unbudgeted path restricted to the committed subset.
        let mut ids: Vec<Option<usize>> = vec![None; entries.len()];
        for (&i, done) in pending.iter().zip(computed) {
            if let Some((qm, cells)) = done {
                computed_cells += cells;
                ids[i] = Some(self.install_query(entries[i].0.clone(), qm));
            }
        }
        let mut cands_on: HashMap<TableId, u64> = HashMap::new();
        for (_, idx) in self.candidates() {
            *cands_on.entry(idx.table).or_insert(0) += 1;
        }
        let cell_work = |queries: &[Arc<QueryMatrix>], id: usize| -> u64 {
            queries[id]
                .slots
                .iter()
                .map(|s| 1 + cands_on.get(&s.table).copied().unwrap_or(0))
                .sum()
        };
        for (i, r) in resolved.iter().enumerate() {
            match *r {
                Resolved::Existing(id) => {
                    let w = self.core.queries[id].weight + entries[i].1;
                    Arc::make_mut(&mut self.core.queries[id]).weight = w;
                    self.core.workload.entries[id].weight = w;
                    reused += cell_work(&self.core.queries, id);
                    ids[i] = Some(id);
                }
                Resolved::SameAs(j) => {
                    if let Some(id) = ids[j] {
                        let w = self.core.queries[id].weight + entries[i].1;
                        Arc::make_mut(&mut self.core.queries[id]).weight = w;
                        self.core.workload.entries[id].weight = w;
                        reused += cell_work(&self.core.queries, id);
                        ids[i] = Some(id);
                    }
                }
                Resolved::Pending => {}
            }
        }
        self.inum
            .note_matrix_incremental(computed_cells, reused, t0.elapsed().as_nanos() as u64);
        ids
    }

    /// Retire a query: it stops contributing to workload costs, its cells
    /// are dropped, and its slot is reused by the next [`Self::add_query`].
    /// Costing a retired id yields `∞` (no skeletons). To rotate an epoch
    /// cheaply, *add the new epoch's queries first*, then retire the
    /// leftovers — recurring queries then dedupe against their still-active
    /// slots instead of being recomputed. No-op on inactive ids.
    pub fn retire_query(&mut self, id: usize) {
        if !self.core.queries.get(id).is_some_and(|qm| qm.active) {
            return;
        }
        self.record(|| MatrixEdit::RetireQuery(id));
        self.core.generation += 1;
        let qm = Arc::make_mut(&mut self.core.queries[id]);
        qm.active = false;
        qm.key = 0;
        qm.weight = 0.0;
        qm.internal = Vec::new();
        qm.reqs = Vec::new();
        qm.slots = Vec::new();
        self.core.workload.entries[id].weight = 0.0;
        for sp in &mut self.core.splits {
            Arc::make_mut(sp).frac[id] = Vec::new();
        }
        self.core.free_queries.push(id);
    }

    /// The query-rotation generation: changes exactly when some slot id's
    /// bound query changes ([`Self::retire_query`] or an install by
    /// [`Self::add_queries`]). Equal generations guarantee every slot id
    /// still denotes the same query, so per-slot caches stay valid.
    pub fn generation(&self) -> u64 {
        self.core.generation
    }

    /// Place a computed query matrix in a slot (retired first), keeping
    /// the workload mirror and every split's fraction rows aligned.
    fn install_query(&mut self, query: Query, qm: QueryMatrix) -> usize {
        let core = &mut self.core;
        core.generation += 1;
        let id = match core.free_queries.pop() {
            Some(id) => {
                core.workload.entries[id].query = query;
                id
            }
            None => {
                core.queries.push(Arc::new(QueryMatrix {
                    weight: 0.0,
                    key: 0,
                    active: false,
                    internal: Vec::new(),
                    reqs: Vec::new(),
                    slots: Vec::new(),
                }));
                core.workload.push(query, 0.0);
                for sp in &mut core.splits {
                    Arc::make_mut(sp).frac.push(Vec::new());
                }
                core.queries.len() - 1
            }
        };
        core.workload.entries[id].weight = qm.weight;
        core.queries[id] = Arc::new(qm);
        // Extend every registered split with this query's surviving
        // fractions so joint lookups stay pure.
        let q = &core.workload.entries[id].query;
        let mut cells = 0u64;
        for sp in &mut core.splits {
            let sp = Arc::make_mut(sp);
            let mut per_slot = Vec::with_capacity(q.slot_count() as usize);
            for slot in 0..q.slot_count() {
                per_slot.push(if q.table_of(slot) == sp.hp.table {
                    cells += 1;
                    let (lo, hi) = access::column_range_restriction(q, slot, sp.hp.column);
                    sp.hp.surviving_fraction(lo, hi)
                } else {
                    1.0
                });
            }
            sp.frac[id] = per_slot;
        }
        if cells > 0 {
            self.inum.note_partition_cells(cells);
        }
        id
    }

    /// An empty configuration sized for this matrix.
    pub fn empty_config(&self) -> CandidateBitset {
        self.core.empty_config()
    }

    /// A configuration holding exactly `ids`.
    pub fn config_of<I: IntoIterator<Item = usize>>(&self, ids: I) -> CandidateBitset {
        self.core.config_of(ids)
    }

    /// The [`PhysicalDesign`] a configuration denotes (slow-path bridge).
    /// Removed candidate ids in the bitset are skipped, matching how the
    /// cost lookups treat them.
    pub fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        self.core.design_of(config)
    }

    /// Cost of `query_id` under the configuration — pure lookups.
    pub fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64 {
        self.cost_toggled(query_id, config, usize::MAX, usize::MAX)
    }

    /// Cost under `config ∪ {extra}` without materializing the union.
    pub fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64 {
        self.cost_toggled(query_id, config, extra, usize::MAX)
    }

    /// Cost under `config ∖ {removed}` without materializing the
    /// difference.
    pub fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64 {
        self.cost_toggled(query_id, config, usize::MAX, removed)
    }

    /// Cost change from adding `cand` to the configuration (negative =
    /// improvement).
    pub fn delta_add(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_plus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Cost change from removing `cand` from the configuration (positive =
    /// regression).
    pub fn delta_remove(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_minus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Weighted workload cost under the configuration (active queries
    /// only; retired slots contribute nothing).
    pub fn workload_cost(&self, config: &CandidateBitset) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.queries[qi].weight * self.cost(qi, config))
            .sum()
    }

    /// Weighted workload cost under `config ∪ {extra}`.
    pub fn workload_cost_plus(&self, config: &CandidateBitset, extra: usize) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.queries[qi].weight * self.cost_plus(qi, config, extra))
            .sum()
    }

    // ---- Partition candidates (the partition-aware cache level) ----

    /// Register (or find) a vertical-fragment candidate for `table`.
    /// Columns are normalised (sorted, deduped); registering the same
    /// group twice returns the existing id. The fragment's heap pages are
    /// precomputed here — the one-off cell work of this cache level.
    pub fn register_fragment(&mut self, table: TableId, columns: &[u16]) -> usize {
        self.record(|| MatrixEdit::RegisterFragment(table, columns.to_vec()));
        let mut cols: Vec<u16> = columns.to_vec();
        cols.sort_unstable();
        cols.dedup();
        if let Some(id) = self
            .core
            .fragments
            .iter()
            .position(|f| f.table == table && f.columns == cols)
        {
            return id;
        }
        let catalog = self.inum.catalog();
        let tdef = catalog.schema.table(table);
        assert!(tdef.width() <= 128, "fragment masks support 128 columns");
        let mask = column_mask(&cols);
        let pages = sizing::heap_pages(catalog.row_count(table), tdef.byte_width_of(&cols) + 8);
        let id = self.core.fragments.len();
        self.core.fragments.push(Arc::new(Fragment {
            table,
            columns: cols,
            mask,
            pages,
        }));
        self.core.frags_by_table[table.0 as usize].push(id);
        self.inum.note_partition_cells(1);
        id
    }

    /// Register (or find) a horizontal-split candidate. The per-(query,
    /// slot) surviving fractions are precomputed once here (and extended
    /// on [`Self::add_query`]), so applying the split in a configuration
    /// is a pure lookup.
    pub fn register_split(&mut self, hp: HorizontalPartitioning) -> usize {
        self.record(|| MatrixEdit::RegisterSplit(hp.clone()));
        if let Some(id) = self.core.splits.iter().position(|s| s.hp == hp) {
            return id;
        }
        let mut frac = Vec::with_capacity(self.core.queries.len());
        let mut cells = 0u64;
        for (qi, entry) in self.core.workload.entries.iter().enumerate() {
            if !self.core.queries[qi].active {
                frac.push(Vec::new()); // retired slot: filled on reuse
                continue;
            }
            let q = &entry.query;
            let mut per_slot = Vec::with_capacity(q.slot_count() as usize);
            for slot in 0..q.slot_count() {
                per_slot.push(if q.table_of(slot) == hp.table {
                    cells += 1;
                    let (lo, hi) = access::column_range_restriction(q, slot, hp.column);
                    hp.surviving_fraction(lo, hi)
                } else {
                    1.0
                });
            }
            frac.push(per_slot);
        }
        let id = self.core.splits.len();
        self.core.splits.push(Arc::new(Split { hp, frac }));
        self.inum.note_partition_cells(cells);
        id
    }

    /// Number of registered fragment candidates.
    pub fn n_fragments(&self) -> usize {
        self.core.n_fragments()
    }

    /// Number of registered split candidates.
    pub fn n_splits(&self) -> usize {
        self.core.n_splits()
    }

    /// The (normalised) column group of a registered fragment.
    pub fn fragment_columns(&self, id: usize) -> &[u16] {
        self.core.fragment_columns(id)
    }

    /// The table a registered fragment belongs to.
    pub fn fragment_table(&self, id: usize) -> TableId {
        self.core.fragment_table(id)
    }

    /// The partitioning of a registered split candidate.
    pub fn split(&self, id: usize) -> &HorizontalPartitioning {
        self.core.split(id)
    }

    /// An empty joint configuration sized for this matrix.
    pub fn empty_joint(&self) -> JointConfig {
        self.core.empty_joint()
    }

    /// The [`PhysicalDesign`] a joint configuration denotes (slow-path
    /// bridge, for validation and for materializing a finished search).
    pub fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign {
        self.core.joint_design_of(cfg)
    }

    /// Cost of `query_id` under a joint configuration — pure lookups plus
    /// per-slot arithmetic re-costing for partition-touched tables.
    pub fn joint_cost(&self, query_id: usize, cfg: &JointConfig) -> f64 {
        self.joint_cost_with(query_id, cfg, &JointToggle::default())
    }

    /// Weighted workload cost under a joint configuration (active queries
    /// only).
    pub fn joint_workload_cost(&self, cfg: &JointConfig) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.queries[qi].weight * self.joint_cost(qi, cfg))
            .sum()
    }

    /// Weighted workload cost under `cfg` with `toggle`'s virtual edits
    /// applied — the merge/split trial hot path.
    pub fn joint_workload_cost_with(&self, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.queries[qi].weight * self.joint_cost_with(qi, cfg, toggle))
            .sum()
    }

    /// Workload-cost change from replacing fragments `a` and `b` with
    /// their (pre-registered) merge `merged` — AutoPart's merge-trial
    /// entry point (negative = improvement).
    pub fn delta_merge(&self, cfg: &JointConfig, a: usize, b: usize, merged: usize) -> f64 {
        self.joint_workload_cost_with(cfg, &JointToggle::merge(a, b, merged))
            - self.joint_workload_cost(cfg)
    }

    /// Workload-cost change from applying horizontal split `split` —
    /// the horizontal-pass trial entry point (negative = improvement).
    pub fn delta_split(&self, cfg: &JointConfig, split: usize) -> f64 {
        self.joint_workload_cost_with(cfg, &JointToggle::split(split))
            - self.joint_workload_cost(cfg)
    }

    /// Cost of `query_id` under `cfg` with `toggle` applied. Mirrors
    /// [`Inum::cost`] on the design [`Self::joint_design_of`] would build,
    /// so the two agree on any joint configuration (the suite's invariant
    /// tests assert this within 1e-6).
    pub fn joint_cost_with(&self, query_id: usize, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        self.inum.note_matrix_lookup();
        if !cfg.partitions_empty() || !toggle.is_noop() {
            self.inum.note_partition_lookup();
        }
        self.core.joint_cost_with(query_id, cfg, toggle)
    }

    /// The shared hot path: cost with one candidate virtually added
    /// (`add`) and/or removed (`remove`); `usize::MAX` disables a toggle.
    fn cost_toggled(
        &self,
        query_id: usize,
        config: &CandidateBitset,
        add: usize,
        remove: usize,
    ) -> f64 {
        self.inum.note_matrix_lookup();
        self.core.cost_toggled(query_id, config, add, remove)
    }
}

impl MatrixCore {
    pub(crate) fn workload(&self) -> &Workload {
        &self.workload
    }

    pub(crate) fn n_queries(&self) -> usize {
        self.queries.len()
    }

    pub(crate) fn n_candidates(&self) -> usize {
        self.indexes.len()
    }

    pub(crate) fn candidates(&self) -> impl Iterator<Item = (usize, &Index)> {
        self.indexes
            .iter()
            .enumerate()
            .filter_map(|(id, idx)| idx.as_ref().map(|i| (id, i)))
    }

    pub(crate) fn candidate(&self, id: usize) -> Option<&Index> {
        self.indexes.get(id).and_then(|i| i.as_ref())
    }

    pub(crate) fn candidate_id(&self, index: &Index) -> Option<usize> {
        self.id_by_index.get(index).copied()
    }

    pub(crate) fn active_workload(&self) -> Workload {
        let mut w = Workload::new();
        for qid in self.active_query_ids() {
            w.push(self.workload.query(qid).clone(), self.query_weight(qid));
        }
        w
    }

    pub(crate) fn active_query_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, qm)| qm.active)
            .map(|(id, _)| id)
    }

    pub(crate) fn query_active(&self, id: usize) -> bool {
        self.queries.get(id).is_some_and(|qm| qm.active)
    }

    pub(crate) fn query_weight(&self, id: usize) -> f64 {
        self.queries.get(id).map_or(0.0, |qm| qm.weight)
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    /// Cells a fresh build would compute for one candidate on `table`
    /// (one per active slot on the table) — the reuse credit of a
    /// duplicate registration.
    fn active_slots_on(&self, table: TableId) -> u64 {
        self.queries
            .iter()
            .filter(|qm| qm.active)
            .flat_map(|qm| qm.slots.iter())
            .filter(|s| s.table == table)
            .count() as u64
    }

    pub(crate) fn empty_config(&self) -> CandidateBitset {
        CandidateBitset::new(self.indexes.len())
    }

    pub(crate) fn config_of<I: IntoIterator<Item = usize>>(&self, ids: I) -> CandidateBitset {
        CandidateBitset::from_ids(self.indexes.len(), ids)
    }

    pub(crate) fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        PhysicalDesign::with_indexes(config.ids().filter_map(|id| self.indexes[id].clone()))
    }

    pub(crate) fn n_fragments(&self) -> usize {
        self.fragments.len()
    }

    pub(crate) fn n_splits(&self) -> usize {
        self.splits.len()
    }

    pub(crate) fn fragment_columns(&self, id: usize) -> &[u16] {
        &self.fragments[id].columns
    }

    pub(crate) fn fragment_table(&self, id: usize) -> TableId {
        self.fragments[id].table
    }

    pub(crate) fn split(&self, id: usize) -> &HorizontalPartitioning {
        &self.splits[id].hp
    }

    pub(crate) fn empty_joint(&self) -> JointConfig {
        JointConfig {
            indexes: self.empty_config(),
            fragments: FragmentBitset::new(self.fragments.len()),
            splits: SplitBitset::new(self.splits.len()),
        }
    }

    pub(crate) fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign {
        let mut d = self.design_of(&cfg.indexes);
        for (ti, frag_ids) in self.frags_by_table.iter().enumerate() {
            let groups: Vec<Vec<u16>> = frag_ids
                .iter()
                .filter(|&&f| cfg.fragments.contains(f))
                .map(|&f| self.fragments[f].columns.clone())
                .collect();
            if !groups.is_empty() {
                d.set_vertical(VerticalPartitioning::new(TableId(ti as u32), groups));
            }
        }
        for (sid, s) in self.splits.iter().enumerate() {
            if cfg.splits.contains(sid) {
                d.set_horizontal(s.hp.clone());
            }
        }
        d
    }

    /// Cost of `query_id` under `cfg` with `toggle` applied — the pure
    /// algorithm behind [`CostMatrix::joint_cost_with`] and the snapshot
    /// read path (no counters, no `Inum` borrow).
    pub(crate) fn joint_cost_with(
        &self,
        query_id: usize,
        cfg: &JointConfig,
        toggle: &JointToggle,
    ) -> f64 {
        let qm = &self.queries[query_id];

        // Per-slot partition-adjusted minima, resolved once per query —
        // they do not vary across skeletons, so the skeleton loop below
        // stays as cheap as the index-only fast path. Slot counts are tiny
        // (one per table in the query), so the state lives on the stack.
        let partitions_active = !cfg.partitions_empty() || !toggle.is_noop();
        let mut state_buf = [NO_PART_STATE; MAX_STACK_SLOTS];
        let state_spill: Vec<Option<PartSlotMins>>;
        let slot_state: &[Option<PartSlotMins>] = if !partitions_active {
            &state_buf[..qm.slots.len().min(MAX_STACK_SLOTS)]
        } else if qm.slots.len() <= MAX_STACK_SLOTS {
            for (s, slot) in qm.slots.iter().enumerate() {
                state_buf[s] = self.slot_partition_state(query_id, s, slot, cfg, toggle);
            }
            &state_buf[..qm.slots.len()]
        } else {
            state_spill = qm
                .slots
                .iter()
                .enumerate()
                .map(|(s, slot)| self.slot_partition_state(query_id, s, slot, cfg, toggle))
                .collect();
            &state_spill
        };
        let use_fast = |s: usize| slot_state.get(s).is_none_or(|st| st.is_none());

        let mut best = f64::INFINITY;
        for (internal, reqs) in qm.internal.iter().zip(&qm.reqs) {
            let mut total = *internal;
            for (s, (slot, &req)) in qm.slots.iter().zip(reqs.iter()).enumerate() {
                let m = if use_fast(s) {
                    // Unpartitioned slot: the precomputed fast path.
                    let mut m = if req == NO_ORDER {
                        slot.base_unordered
                    } else {
                        slot.base_ordered[req as usize]
                    };
                    for cand in &slot.cands {
                        if !cfg.indexes.contains(cand.id) {
                            continue;
                        }
                        let c = if req == NO_ORDER {
                            cand.unordered
                        } else {
                            cand.ordered[req as usize]
                        };
                        if c < m {
                            m = c;
                        }
                    }
                    m
                } else {
                    // Partition-touched slot: the minima were re-derived
                    // against the configuration's fetch target above.
                    let mins = slot_state[s].as_ref().expect("checked by use_fast");
                    if req == NO_ORDER {
                        mins.unordered
                    } else {
                        mins.ordered[req as usize]
                    }
                };
                total += m;
                if total >= best {
                    total = f64::INFINITY;
                    break; // early exit: already worse (or infeasible)
                }
            }
            if total < best {
                best = total;
            }
        }
        debug_assert!(!best.is_nan(), "joint cost accumulation produced NaN");
        best
    }

    /// Resolve one slot's partition-adjusted access minima under the
    /// configuration (+ toggle): the fetch target from the selected
    /// fragments, the surviving fraction from the selected split, then one
    /// arithmetic re-costing per cached path. `None` = the slot's table
    /// carries no partition candidate, use the precomputed unpartitioned
    /// numbers.
    fn slot_partition_state(
        &self,
        query_id: usize,
        slot_idx: usize,
        slot: &SlotCosts,
        cfg: &JointConfig,
        toggle: &JointToggle,
    ) -> Option<PartSlotMins> {
        // In every toggle resolution below, an add wins over a remove of
        // the same id: the trial set is (cfg ∖ removes) ∪ adds, so
        // `merge(a, b, merged)` with `merged == b` (a merge that swallows a
        // subset fragment, which replication can produce) correctly keeps
        // `b` selected instead of dropping its columns from the cover.
        let mut h_frac = 1.0f64;
        let mut has_split = false;
        let split_on = |sid: usize| {
            self.splits[sid].hp.table == slot.table
                && (toggle.add_split == Some(sid) || toggle.remove_split != Some(sid))
        };
        for sid in cfg.splits.ids().filter(|&sid| split_on(sid)).chain(
            toggle
                .add_split
                .filter(|&sid| split_on(sid) && !cfg.splits.contains(sid)),
        ) {
            debug_assert!(!has_split, "at most one split per table");
            h_frac = self.splits[sid].frac[query_id][slot_idx];
            has_split = true;
        }

        let frag_on = |fid: usize| {
            self.fragments[fid].table == slot.table
                && (toggle.add_fragment == Some(fid)
                    || (toggle.remove_fragments[0] != Some(fid)
                        && toggle.remove_fragments[1] != Some(fid)))
        };
        let mut any = false;
        let mut disjoint_pages = 0u64;
        let mut touched = 0usize;
        let mut union_mask = 0u128;
        let mut popcount_sum = 0u32;
        for fid in cfg.fragments.ids().filter(|&fid| frag_on(fid)).chain(
            toggle
                .add_fragment
                .filter(|&fid| frag_on(fid) && !cfg.fragments.contains(fid)),
        ) {
            any = true;
            let fr = &self.fragments[fid];
            union_mask |= fr.mask;
            popcount_sum += fr.mask.count_ones();
            if fr.mask & slot.needed_mask != 0 {
                disjoint_pages += fr.pages;
                touched += 1;
            }
        }
        if !any && !has_split {
            return None;
        }
        let target = if !any {
            slot.base_target
        } else if popcount_sum == union_mask.count_ones() {
            // Disjoint fragments: the greedy set cover reduces to "every
            // fragment intersecting the needed columns".
            FetchTarget {
                pages: disjoint_pages.max(1) as f64,
                fragments: touched.max(1),
            }
        } else {
            let selected = |fid: usize| {
                toggle.add_fragment == Some(fid)
                    || (cfg.fragments.contains(fid)
                        && toggle.remove_fragments[0] != Some(fid)
                        && toggle.remove_fragments[1] != Some(fid))
            };
            self.cover_target(slot.table.0 as usize, slot, &selected)
        };

        // Re-derive the per-order minima against the new target: base scan
        // first, then every cached path of every selected candidate, each
        // costed exactly once.
        let params = &self.params;
        let base = access::seq_scan_cost(params, slot.base_rows, slot.n_filters, target, h_frac);
        let mut mins = PartSlotMins {
            unordered: base,
            ordered: [f64::INFINITY; MAX_SLOT_ORDERS],
        };
        for (o, c) in slot.base_ordered.iter().enumerate() {
            if c.is_finite() {
                mins.ordered[o] = base;
            }
        }
        for cand in &slot.cands {
            if !cfg.indexes.contains(cand.id) {
                continue;
            }
            for path in &cand.paths {
                let c = path.profile.cost(params, target);
                if c < mins.unordered {
                    mins.unordered = c;
                }
                let mut order_bits = path.order_ok;
                while order_bits != 0 {
                    let o = order_bits.trailing_zeros() as usize;
                    order_bits &= order_bits - 1;
                    if c < mins.ordered[o] {
                        mins.ordered[o] = c;
                    }
                }
            }
        }
        Some(mins)
    }

    /// Replication-aware fetch target: reproduce
    /// [`VerticalPartitioning::fragments_for`]'s greedy set cover —
    /// including its group ordering and tie-breaking — over the selected
    /// (overlapping) fragments, so costs agree with the slow path exactly.
    fn cover_target(
        &self,
        table_idx: usize,
        slot: &SlotCosts,
        selected: &dyn Fn(usize) -> bool,
    ) -> FetchTarget {
        let mut groups: Vec<&Fragment> = self.frags_by_table[table_idx]
            .iter()
            .filter(|&&fid| selected(fid))
            .map(|&fid| &*self.fragments[fid])
            .collect();
        // `VerticalPartitioning::new` sorts groups by column list; the
        // greedy cover's tie-breaking depends on that order.
        groups.sort_by(|a, b| a.columns.cmp(&b.columns));
        let mut remaining = slot.needed_mask;
        let mut picked = vec![false; groups.len()];
        let mut pages = 0u64;
        let mut count = 0usize;
        while remaining != 0 {
            // Last maximal coverage wins, as `Iterator::max_by_key` does.
            let mut best: Option<(usize, u32)> = None;
            for (i, g) in groups.iter().enumerate() {
                if picked[i] {
                    continue;
                }
                let cov = (g.mask & remaining).count_ones();
                if best.is_none_or(|(_, c)| cov >= c) {
                    best = Some((i, cov));
                }
            }
            match best {
                Some((i, cov)) if cov > 0 => {
                    remaining &= !groups[i].mask;
                    picked[i] = true;
                    pages += groups[i].pages;
                    count += 1;
                }
                _ => break, // column not covered anywhere: malformed, stop
            }
        }
        FetchTarget {
            pages: pages.max(1) as f64,
            fragments: count.max(1),
        }
    }

    /// The shared hot path: cost with one candidate virtually added
    /// (`add`) and/or removed (`remove`); `usize::MAX` disables a toggle.
    /// Mirrors [`Inum::cost`]'s skeleton loop exactly so the two agree
    /// bit-for-bit on configurations the matrix covers.
    pub(crate) fn cost_toggled(
        &self,
        query_id: usize,
        config: &CandidateBitset,
        add: usize,
        remove: usize,
    ) -> f64 {
        let qm = &self.queries[query_id];
        let mut best = f64::INFINITY;
        for (internal, reqs) in qm.internal.iter().zip(&qm.reqs) {
            let mut total = *internal;
            for (slot, &req) in qm.slots.iter().zip(reqs.iter()) {
                let mut m = if req == NO_ORDER {
                    slot.base_unordered
                } else {
                    slot.base_ordered[req as usize]
                };
                for cand in &slot.cands {
                    if (!config.contains(cand.id) && cand.id != add) || cand.id == remove {
                        continue;
                    }
                    let c = if req == NO_ORDER {
                        cand.unordered
                    } else {
                        cand.ordered[req as usize]
                    };
                    if c < m {
                        m = c;
                    }
                }
                total += m;
                if total >= best {
                    total = f64::INFINITY;
                    break; // early exit: already worse (or infeasible)
                }
            }
            if total < best {
                best = total;
            }
        }
        // `INFINITY` is a legitimate "no feasible plan under this
        // skeleton" sentinel, but NaN means a poisoned float reached the
        // accumulation — the catalog edge is supposed to make that
        // impossible.
        debug_assert!(!best.is_nan(), "cost accumulation produced NaN");
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    fn setup() -> (Catalog, Optimizer) {
        (sdss_catalog(0.01), Optimizer::new())
    }

    #[test]
    fn bitset_insert_remove_contains() {
        let mut s = CandidateBitset::new(130);
        assert!(s.is_empty());
        for id in [0, 63, 64, 129] {
            s.insert(id);
            assert!(s.contains(id));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        s.remove(64);
        assert!(!s.contains(64));
        assert!(!s.contains(500), "out-of-range ids are simply absent");
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn matrix_matches_inum_on_every_singleton_and_pair() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        for (qi, (q, _)) in w.iter().enumerate() {
            let empty = matrix.empty_config();
            assert_eq!(
                matrix.cost(qi, &empty),
                inum.cost(&PhysicalDesign::empty(), q),
                "empty config must match Q{qi}"
            );
            for a in 0..cands.indexes.len().min(8) {
                let solo = matrix.config_of([a]);
                let d = PhysicalDesign::with_indexes([cands.indexes[a].clone()]);
                assert_eq!(matrix.cost(qi, &solo), inum.cost(&d, q), "solo {a} Q{qi}");
                for b in (a + 1)..cands.indexes.len().min(8) {
                    let pair = matrix.config_of([a, b]);
                    let d = PhysicalDesign::with_indexes([
                        cands.indexes[a].clone(),
                        cands.indexes[b].clone(),
                    ]);
                    assert_eq!(
                        matrix.cost(qi, &pair),
                        inum.cost(&d, q),
                        "pair ({a},{b}) Q{qi}"
                    );
                }
            }
        }
    }

    #[test]
    fn toggled_costs_match_materialized_configs() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 102);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let base_ids = [0usize, 2];
        let base = matrix.config_of(base_ids);
        for qi in 0..matrix.n_queries() {
            // plus
            let extra = 1usize;
            let mut plus = base.clone();
            plus.insert(extra);
            assert_eq!(
                matrix.cost_plus(qi, &base, extra),
                matrix.cost(qi, &plus),
                "cost_plus must equal materialized union (Q{qi})"
            );
            let delta = matrix.delta_add(qi, &base, extra);
            assert!(
                (delta - (matrix.cost(qi, &plus) - matrix.cost(qi, &base))).abs() < 1e-12,
                "delta_add must equal full re-evaluation (Q{qi})"
            );
            // minus
            let removed = 2usize;
            let mut minus = base.clone();
            minus.remove(removed);
            assert_eq!(
                matrix.cost_minus(qi, &base, removed),
                matrix.cost(qi, &minus),
                "cost_minus must equal materialized difference (Q{qi})"
            );
        }
    }

    #[test]
    fn workload_cost_is_weighted_sum() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let mut w = pgdesign_query::Workload::new();
        let q = pgdesign_query::parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 7")
            .unwrap();
        w.push(q.clone(), 2.0);
        w.push(q, 3.0);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let cfg = matrix.config_of([0]);
        let manual: f64 = 2.0 * matrix.cost(0, &cfg) + 3.0 * matrix.cost(1, &cfg);
        assert!((matrix.workload_cost(&cfg) - manual).abs() < 1e-9);
    }

    #[test]
    fn joint_cost_matches_inum_on_partitioned_designs() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 104);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;

        // Disjoint vertical fragments + a horizontal split + two indexes.
        let f1 = matrix.register_fragment(photo, &[0, 1, 2]);
        let f2 = matrix.register_fragment(photo, &(3..16).collect::<Vec<u16>>());
        let split = matrix.register_split(pgdesign_catalog::design::HorizontalPartitioning::new(
            photo,
            1,
            (1..10).map(|i| i as f64 * 36.0).collect(),
        ));
        let mut cfg = matrix.empty_joint();
        cfg.indexes.insert(0);
        if cands.indexes.len() > 1 {
            cfg.indexes.insert(1);
        }
        cfg.fragments.insert(f1);
        cfg.fragments.insert(f2);
        cfg.splits.insert(split);

        let design = matrix.joint_design_of(&cfg);
        assert!(design.vertical(photo).is_some());
        assert!(design.horizontal(photo).is_some());
        for (qi, (q, _)) in w.iter().enumerate() {
            let fast = matrix.joint_cost(qi, &cfg);
            let oracle = inum.cost(&design, q);
            assert!(
                (fast - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
                "joint {fast} vs inum {oracle} (Q{qi})"
            );
        }
    }

    #[test]
    fn joint_cost_matches_inum_with_replicated_fragments() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 105);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // Overlapping groups: column 0 replicated into both fragments —
        // exercises the greedy set-cover reproduction.
        let f1 = matrix.register_fragment(photo, &[0, 1, 2]);
        let f2 = matrix.register_fragment(photo, &(0..16).skip(3).chain([0]).collect::<Vec<u16>>());
        let mut cfg = matrix.empty_joint();
        cfg.fragments.insert(f1);
        cfg.fragments.insert(f2);
        let design = matrix.joint_design_of(&cfg);
        for (qi, (q, _)) in w.iter().enumerate() {
            let fast = matrix.joint_cost(qi, &cfg);
            let oracle = inum.cost(&design, q);
            assert!(
                (fast - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
                "replicated joint {fast} vs inum {oracle} (Q{qi})"
            );
        }
    }

    #[test]
    fn joint_cost_with_empty_partitions_equals_index_path() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 106);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let mut cfg = matrix.empty_joint();
        for id in (0..cands.indexes.len()).step_by(2) {
            cfg.indexes.insert(id);
        }
        for qi in 0..matrix.n_queries() {
            assert_eq!(
                matrix.joint_cost(qi, &cfg),
                matrix.cost(qi, &cfg.indexes),
                "no partitions selected: joint must equal the index-only path (Q{qi})"
            );
        }
    }

    #[test]
    fn toggled_joint_costs_match_materialized_configs() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 107);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let a = matrix.register_fragment(photo, &[0, 1, 2]);
        let b = matrix.register_fragment(photo, &[3, 4, 5]);
        let rest = matrix.register_fragment(photo, &(6..16).collect::<Vec<u16>>());
        let merged = matrix.register_fragment(photo, &[0, 1, 2, 3, 4, 5]);
        let split = matrix.register_split(pgdesign_catalog::design::HorizontalPartitioning::new(
            photo,
            1,
            vec![90.0, 180.0, 270.0],
        ));

        let mut cfg = matrix.empty_joint();
        for f in [a, b, rest] {
            cfg.fragments.insert(f);
        }

        // delta_merge against materialized re-evaluation.
        let mut merged_cfg = matrix.empty_joint();
        merged_cfg.fragments.insert(rest);
        merged_cfg.fragments.insert(merged);
        let full = matrix.joint_workload_cost(&merged_cfg) - matrix.joint_workload_cost(&cfg);
        let delta = matrix.delta_merge(&cfg, a, b, merged);
        assert!(
            (delta - full).abs() < 1e-9,
            "delta_merge {delta} vs full {full}"
        );

        // delta_split against materialized re-evaluation.
        let mut split_cfg = cfg.clone();
        split_cfg.splits.insert(split);
        let full = matrix.joint_workload_cost(&split_cfg) - matrix.joint_workload_cost(&cfg);
        let delta = matrix.delta_split(&cfg, split);
        assert!(
            (delta - full).abs() < 1e-9,
            "delta_split {delta} vs full {full}"
        );
    }

    #[test]
    fn merge_toggle_whose_result_equals_an_input_keeps_it_selected() {
        // After replication, one group can be a subset of another; a merge
        // of (subset, superset) registers to the superset's own id. The
        // trial must then cost `cfg ∖ {subset}` — the add wins over the
        // remove of the same id — not a configuration missing both.
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 110);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let a = matrix.register_fragment(photo, &[0, 1, 2]);
        let b = matrix.register_fragment(photo, &[0, 1, 2, 3, 4, 5]);
        let rest = matrix.register_fragment(photo, &(6..16).collect::<Vec<u16>>());
        let mut cfg = matrix.empty_joint();
        for f in [a, b, rest] {
            cfg.fragments.insert(f);
        }
        let trial = matrix.joint_workload_cost_with(&cfg, &JointToggle::merge(a, b, b));
        let mut expect_cfg = matrix.empty_joint();
        expect_cfg.fragments.insert(b);
        expect_cfg.fragments.insert(rest);
        let expect = matrix.joint_workload_cost(&expect_cfg);
        assert!(
            (trial - expect).abs() < 1e-9,
            "merge(a, b, b) must cost cfg ∖ {{a}}: {trial} vs {expect}"
        );
    }

    #[test]
    fn registration_is_deduplicated() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 3, 108);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let a = matrix.register_fragment(photo, &[2, 1, 0]);
        let b = matrix.register_fragment(photo, &[0, 1, 2, 2]);
        assert_eq!(a, b, "normalised duplicates collapse to one id");
        assert_eq!(matrix.n_fragments(), 1);
        assert_eq!(matrix.fragment_columns(a), &[0, 1, 2]);
        let hp = pgdesign_catalog::design::HorizontalPartitioning::new(photo, 1, vec![100.0]);
        let s1 = matrix.register_split(hp.clone());
        let s2 = matrix.register_split(hp);
        assert_eq!(s1, s2);
        assert_eq!(matrix.n_splits(), 1);
    }

    #[test]
    fn partition_counters_accumulate() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 3, 109);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let before = inum.matrix_stats();
        let f = matrix.register_fragment(photo, &[0, 1]);
        let rest = matrix.register_fragment(photo, &(2..16).collect::<Vec<u16>>());
        let after_reg = inum.matrix_stats();
        assert!(after_reg.partition_cells >= before.partition_cells + 2);
        let mut cfg = matrix.empty_joint();
        cfg.fragments.insert(f);
        cfg.fragments.insert(rest);
        let _ = matrix.joint_workload_cost(&cfg);
        let s = inum.matrix_stats();
        assert_eq!(
            s.partition_lookups,
            after_reg.partition_lookups + w.len() as u64
        );
        assert_eq!(s.lookups, after_reg.lookups + w.len() as u64);
    }

    #[test]
    fn add_candidate_matches_fresh_build_and_keeps_ids_stable() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 111);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        assert!(cands.indexes.len() >= 3);
        // Build over a prefix, then add the rest incrementally.
        let split = cands.indexes.len() / 2;
        let mut grown = CostMatrix::build(&inum, &w, &cands.indexes[..split]);
        for idx in &cands.indexes[split..] {
            grown.add_candidate(idx);
        }
        let fresh = CostMatrix::build(&inum, &w, &cands.indexes);
        for qi in 0..w.len() {
            for id in 0..cands.indexes.len() {
                let solo = fresh.config_of([id]);
                assert_eq!(
                    grown.cost(qi, &solo),
                    fresh.cost(qi, &solo),
                    "incremental candidate {id} must cost bit-identically (Q{qi})"
                );
            }
        }
        // Re-registering returns the existing id and counts reuse.
        let before = inum.matrix_stats();
        let id = grown.add_candidate(&cands.indexes[0]);
        assert_eq!(id, 0, "ids are stable");
        let after = inum.matrix_stats();
        assert_eq!(after.cells, before.cells, "no cells recomputed on reuse");
        assert!(after.cells_reused > before.cells_reused);
    }

    #[test]
    fn bulk_add_candidates_matches_one_at_a_time_and_serial() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 115);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        assert!(cands.indexes.len() >= 3);
        let split = cands.indexes.len() / 3;
        let rest = &cands.indexes[split..];

        // Bulk (parallel), bulk (pinned serial), and one-at-a-time growth
        // from the same prefix must produce bit-identical cells and ids.
        let mut bulk = CostMatrix::build(&inum, &w, &cands.indexes[..split]);
        let bulk_ids = bulk.add_candidates_with_threads(rest, 4);
        let mut serial = CostMatrix::build(&inum, &w, &cands.indexes[..split]);
        let serial_ids = serial.add_candidates_with_threads(rest, 1);
        let mut single = CostMatrix::build(&inum, &w, &cands.indexes[..split]);
        let single_ids: Vec<usize> = rest.iter().map(|idx| single.add_candidate(idx)).collect();
        assert_eq!(bulk_ids, single_ids, "bulk ids must match one-at-a-time");
        assert_eq!(bulk_ids, serial_ids, "thread count must not affect ids");
        for qi in 0..w.len() {
            for id in 0..cands.indexes.len() {
                let solo = bulk.config_of([id]);
                let cb = bulk.cost(qi, &solo);
                assert_eq!(cb, single.cost(qi, &solo), "bulk vs single {id} Q{qi}");
                assert_eq!(cb, serial.cost(qi, &solo), "bulk vs serial {id} Q{qi}");
            }
            let all = bulk.config_of(0..cands.indexes.len());
            assert_eq!(bulk.cost(qi, &all), single.cost(qi, &all));
        }

        // A batch containing duplicates (resident + within-batch) resolves
        // them to one id without recomputing cells.
        let before = inum.matrix_stats();
        let dup_batch = [rest[0].clone(), cands.indexes[0].clone(), rest[0].clone()];
        let dup_ids = bulk.add_candidates(&dup_batch);
        assert_eq!(dup_ids[0], bulk_ids[0]);
        assert_eq!(dup_ids[1], 0);
        assert_eq!(
            dup_ids[2], dup_ids[0],
            "within-batch duplicate shares the id"
        );
        let after = inum.matrix_stats();
        assert_eq!(after.cells, before.cells, "duplicates recompute nothing");
        assert!(after.cells_reused > before.cells_reused);
    }

    #[test]
    fn remove_candidate_recycles_the_id_and_clears_cells() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 112);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let victim = 1usize.min(cands.indexes.len() - 1);
        let all = matrix.config_of(0..cands.indexes.len());
        matrix.remove_candidate(victim);
        assert!(matrix.candidate(victim).is_none());
        // A bitset still holding the removed id matches nothing: costs
        // equal the configuration without it.
        let mut without = all.clone();
        without.remove(victim);
        for qi in 0..w.len() {
            assert_eq!(matrix.cost(qi, &all), matrix.cost(qi, &without));
        }
        // The freed id is recycled; other ids are untouched.
        let new_idx = Index::new(cands.indexes[0].table, vec![15]);
        if !cands.indexes.contains(&new_idx) {
            assert_eq!(matrix.add_candidate(&new_idx), victim);
            assert_eq!(matrix.candidate(victim), Some(&new_idx));
        }
        matrix.remove_candidate(9999); // out of range: no-op
    }

    #[test]
    fn add_and_retire_queries_rotate_slots() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 6, 113);
        let extra = sdss_workload(&c, 9, 114);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let n0 = matrix.n_queries();

        // Adding a resident query reuses its slot (weights add, no cells).
        let before = inum.matrix_stats();
        let id = matrix.add_query(w.query(2), 2.5);
        assert_eq!(id, 2);
        assert_eq!(matrix.n_queries(), n0, "no new slot for a resident query");
        assert!((matrix.query_weight(2) - 3.5).abs() < 1e-12);
        let after = inum.matrix_stats();
        assert_eq!(after.cells, before.cells);
        assert!(after.cells_reused > before.cells_reused);

        // Retire, then add a new query: the slot is reused.
        matrix.retire_query(2);
        assert!(!matrix.query_active(2));
        assert_eq!(matrix.query_weight(2), 0.0);
        assert!(matrix.cost(2, &matrix.empty_config()).is_infinite());
        let nid = matrix.add_query(extra.query(8), 1.0);
        assert_eq!(nid, 2, "retired slots are reused first");
        assert!(matrix.query_active(2));
        // The reused slot costs like a fresh single-query build.
        let solo = Workload::from_queries([extra.query(8).clone()]);
        let fresh = CostMatrix::build(&inum, &solo, &cands.indexes);
        let cfg = matrix.config_of([0]);
        assert_eq!(matrix.cost(2, &cfg), fresh.cost(0, &cfg));
        // Workload cost counts active slots only.
        let manual: f64 = matrix
            .active_query_ids()
            .map(|qi| matrix.query_weight(qi) * matrix.cost(qi, &cfg))
            .sum();
        assert!((matrix.workload_cost(&cfg) - manual).abs() < 1e-9);
    }

    #[test]
    fn add_query_extends_registered_splits() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 4, 115);
        let extra = sdss_workload(&c, 9, 116);
        let mut matrix = CostMatrix::build(&inum, &w, &[]);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let split = matrix.register_split(pgdesign_catalog::design::HorizontalPartitioning::new(
            photo,
            1,
            (1..10).map(|i| i as f64 * 36.0).collect(),
        ));
        // Query added *after* the split registration still costs correctly
        // under it (fractions are extended on install).
        let qid = matrix.add_query(extra.query(0), 1.0);
        let mut cfg = matrix.empty_joint();
        cfg.splits.insert(split);
        let design = matrix.joint_design_of(&cfg);
        let fast = matrix.joint_cost(qid, &cfg);
        let oracle = inum.cost(&design, extra.query(0));
        assert!(
            (fast - oracle).abs() <= 1e-6 * oracle.abs().max(1.0),
            "late-added query under a split: {fast} vs {oracle}"
        );
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 12, 117);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let serial = CostMatrix::build_with_threads(&inum, &w, &cands.indexes, 1);
        let parallel = CostMatrix::build_with_threads(&inum, &w, &cands.indexes, 4);
        for qi in 0..w.len() {
            assert_eq!(
                serial.cost(qi, &serial.empty_config()),
                parallel.cost(qi, &parallel.empty_config())
            );
            for id in 0..cands.indexes.len() {
                let cfg = serial.config_of([id]);
                assert_eq!(
                    serial.cost(qi, &cfg),
                    parallel.cost(qi, &cfg),
                    "serial and parallel builds must agree bit-for-bit (Q{qi}, cand {id})"
                );
            }
        }
    }

    #[test]
    fn counters_accumulate_on_the_inum_instance() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 103);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let after_build = inum.matrix_stats();
        assert_eq!(after_build.builds, 1);
        assert!(after_build.cells > 0);
        let empty = matrix.empty_config();
        for qi in 0..matrix.n_queries() {
            let _ = matrix.cost(qi, &empty);
        }
        let s = inum.matrix_stats();
        assert_eq!(s.lookups, after_build.lookups + w.len() as u64);
    }

    #[test]
    fn budgeted_add_queries_commits_a_prefix_and_resumes_exactly() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 6, 201);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        // Start from an empty workload and feed it in under a 3-unit
        // budget, serially so the committed prefix is deterministic.
        let mut m = CostMatrix::build_with_threads(
            &inum,
            &pgdesign_query::Workload::new(),
            &cands.indexes,
            1,
        );
        let entries: Vec<(&Query, f64)> = w.iter().collect();
        let budget = WorkBudget::with_units(3);
        let ids = m.add_queries_budgeted_with_threads(entries.iter().copied(), &budget, 1);
        assert_eq!(ids.len(), 6);
        let committed: Vec<usize> = ids.iter().filter_map(|id| *id).collect();
        assert_eq!(committed.len(), 3, "exactly the budgeted prefix commits");
        assert!(ids[3..].iter().all(|id| id.is_none()));
        // Resume the remainder with an unlimited budget: every deferred
        // entry lands, and the final matrix costs like a fresh build.
        let rest: Vec<(&Query, f64)> = entries[3..].to_vec();
        let more =
            m.add_queries_budgeted_with_threads(rest.iter().copied(), &WorkBudget::unlimited(), 1);
        assert!(more.iter().all(|id| id.is_some()));
        let fresh = CostMatrix::build_with_threads(&inum, &w, &cands.indexes, 1);
        let cfg = m.config_of([0, 1]);
        let cfg_f = fresh.config_of([0, 1]);
        for qi in 0..3 {
            assert_eq!(m.cost(qi, &cfg), fresh.cost(qi, &cfg_f), "Q{qi}");
        }
    }

    #[test]
    fn budgeted_add_candidates_commits_whole_candidates_only() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 5, 202);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        assert!(cands.indexes.len() >= 4);
        let mut m = CostMatrix::build_with_threads(&inum, &w, &[], 1);
        let budget = WorkBudget::with_units(2);
        let ids = m.add_candidates_budgeted_with_threads(&cands.indexes, &budget, 1);
        let committed: Vec<usize> = ids.iter().filter_map(|id| *id).collect();
        assert_eq!(committed.len(), 2, "one unit per new candidate");
        // Committed candidates cost exactly as in a matrix that only ever
        // saw them — whole-candidate commit, no partial cells.
        let subset: Vec<Index> = committed
            .iter()
            .map(|&id| m.candidate(id).unwrap().clone())
            .collect();
        let fresh = CostMatrix::build_with_threads(&inum, &w, &subset, 1);
        for qi in 0..m.n_queries() {
            let cfg = m.config_of(committed.iter().copied());
            let cfg_f = fresh.config_of(0..subset.len());
            assert_eq!(m.cost(qi, &cfg), fresh.cost(qi, &cfg_f), "Q{qi}");
        }
        // Deferred candidates resume for free-list ids on the next call.
        let again =
            m.add_candidates_budgeted_with_threads(&cands.indexes, &WorkBudget::unlimited(), 1);
        assert!(again.iter().all(|id| id.is_some()));
    }

    #[test]
    fn budgeted_journal_records_only_installed_work() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 6, 203);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live =
            CostMatrix::build_with_threads(&inum, &pgdesign_query::Workload::new(), &[], 1);
        live.enable_journal();
        let entries: Vec<(&Query, f64)> = w.iter().collect();
        let _ = live.add_queries_budgeted_with_threads(
            entries.iter().copied(),
            &WorkBudget::with_units(4),
            1,
        );
        let _ = live.add_candidates_budgeted_with_threads(
            &cands.indexes,
            &WorkBudget::with_units(3),
            1,
        );
        live.publish();
        let edits = live.take_journal();
        // Replay against the same empty base reproduces the budgeted
        // state exactly — the journal described installed work only.
        let mut replayed =
            CostMatrix::build_with_threads(&inum, &pgdesign_query::Workload::new(), &[], 1);
        for e in &edits {
            replayed.apply_edit(e);
        }
        assert_eq!(replayed.n_queries(), live.n_queries());
        let live_cands: Vec<(usize, &Index)> = live.candidates().collect();
        let replay_cands: Vec<(usize, &Index)> = replayed.candidates().collect();
        assert_eq!(live_cands, replay_cands);
        let all: Vec<usize> = live_cands.iter().map(|(id, _)| *id).collect();
        for qi in 0..live.n_queries() {
            let a = live.cost(qi, &live.config_of(all.iter().copied()));
            let b = replayed.cost(qi, &replayed.config_of(all.iter().copied()));
            assert_eq!(a, b, "replayed cost must be bit-identical (Q{qi})");
        }
    }

    #[test]
    fn budgeted_cold_build_returns_the_remainder() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 6, 204);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let (m, deferred) =
            CostMatrix::build_budgeted(&inum, &w, &cands.indexes, 1, &WorkBudget::with_units(4));
        assert_eq!(m.n_queries(), 4);
        assert_eq!(deferred.len(), 2);
        // The deferred pairs are exactly the workload tail.
        let tail: Vec<(Query, f64)> = w.iter().skip(4).map(|(q, w)| (q.clone(), w)).collect();
        assert_eq!(deferred, tail);
    }
}
