//! The INUM cost model: skeleton cache + per-design fast costing.

use crate::key::query_key;
use crate::matrix::MatrixStats;
use parking_lot::RwLock;
use pgdesign_catalog::design::PhysicalDesign;
use pgdesign_catalog::Catalog;
use pgdesign_optimizer::access::{self, AccessContext, SlotProfile};
use pgdesign_optimizer::optimizer::interesting_slot_orders;
use pgdesign_optimizer::plan::order_satisfies;
use pgdesign_optimizer::{Optimizer, Skeleton};
use pgdesign_query::ast::Query;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on enumerated interesting-order combinations per query.
const MAX_COMBOS: usize = 64;

/// Cache and call counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InumStats {
    /// `cost()` invocations.
    pub cost_calls: u64,
    /// Skeleton sets served from cache.
    pub cache_hits: u64,
    /// Skeleton sets computed via the optimizer.
    pub cache_misses: u64,
    /// Individual skeletons computed (order combinations).
    pub skeletons_built: u64,
}

/// One skeleton-cache entry: the skeleton set plus the tables the query
/// touches (a bitmask over `TableId.0`, [`ALL_TABLES`] when any id
/// overflows the mask), so a statistics refresh on one table can evict
/// only the entries it stales.
struct CacheEntry {
    skeletons: std::sync::Arc<Vec<Skeleton>>,
    table_mask: u64,
}

/// Conservative "touches every table" mask for queries whose table ids
/// don't fit the 64-bit mask.
const ALL_TABLES: u64 = u64::MAX;

/// The tables-touched mask of a query.
fn table_mask(query: &Query) -> u64 {
    let mut mask = 0u64;
    for t in &query.tables {
        if t.table.0 >= 64 {
            return ALL_TABLES;
        }
        mask |= 1 << t.table.0;
    }
    mask
}

/// The INUM cost model over a catalog and optimizer.
pub struct Inum<'a> {
    catalog: &'a Catalog,
    optimizer: &'a Optimizer,
    cache: RwLock<HashMap<u64, CacheEntry>>,
    cost_calls: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    skeletons_built: AtomicU64,
    // Second-level (cost matrix) counters; bumped by `crate::matrix`.
    matrix_builds: AtomicU64,
    matrix_cells: AtomicU64,
    matrix_cells_reused: AtomicU64,
    matrix_build_nanos: AtomicU64,
    matrix_lookups: AtomicU64,
    matrix_partition_cells: AtomicU64,
    matrix_partition_lookups: AtomicU64,
}

impl<'a> Inum<'a> {
    /// New INUM instance with an empty cache.
    pub fn new(catalog: &'a Catalog, optimizer: &'a Optimizer) -> Self {
        Inum {
            catalog,
            optimizer,
            cache: RwLock::new(HashMap::new()),
            cost_calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            skeletons_built: AtomicU64::new(0),
            matrix_builds: AtomicU64::new(0),
            matrix_cells: AtomicU64::new(0),
            matrix_cells_reused: AtomicU64::new(0),
            matrix_build_nanos: AtomicU64::new(0),
            matrix_lookups: AtomicU64::new(0),
            matrix_partition_cells: AtomicU64::new(0),
            matrix_partition_lookups: AtomicU64::new(0),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// The underlying optimizer.
    pub fn optimizer(&self) -> &Optimizer {
        self.optimizer
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> InumStats {
        InumStats {
            cost_calls: self.cost_calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            skeletons_built: self.skeletons_built.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the second-level (cost matrix) counters, aggregated
    /// over every [`crate::CostMatrix`] built on this instance.
    pub fn matrix_stats(&self) -> MatrixStats {
        MatrixStats {
            builds: self.matrix_builds.load(Ordering::Relaxed),
            cells: self.matrix_cells.load(Ordering::Relaxed),
            cells_reused: self.matrix_cells_reused.load(Ordering::Relaxed),
            build_nanos: self.matrix_build_nanos.load(Ordering::Relaxed),
            lookups: self.matrix_lookups.load(Ordering::Relaxed),
            partition_cells: self.matrix_partition_cells.load(Ordering::Relaxed),
            partition_lookups: self.matrix_partition_lookups.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_matrix_build(&self, cells: u64, nanos: u64) {
        self.matrix_builds.fetch_add(1, Ordering::Relaxed);
        self.matrix_cells.fetch_add(cells, Ordering::Relaxed);
        self.matrix_build_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn note_matrix_incremental(&self, computed: u64, reused: u64, nanos: u64) {
        self.matrix_cells.fetch_add(computed, Ordering::Relaxed);
        self.matrix_cells_reused
            .fetch_add(reused, Ordering::Relaxed);
        self.matrix_build_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn note_matrix_lookup(&self) {
        self.matrix_lookups.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_partition_cells(&self, cells: u64) {
        self.matrix_partition_cells
            .fetch_add(cells, Ordering::Relaxed);
    }

    pub(crate) fn note_partition_lookup(&self) {
        self.matrix_partition_lookups
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Warm the cache for every query of a workload.
    pub fn prepare_workload(&self, workload: &pgdesign_query::Workload) {
        for (q, _) in workload.iter() {
            let _ = self.skeletons(q);
        }
    }

    /// INUM cost of `query` under `design` — the fast path.
    ///
    /// Access paths are enumerated *once per slot* and shared across all
    /// cached skeletons; each skeleton then reduces to a table lookup plus
    /// an addition, which is where the order-of-magnitude speedup over
    /// re-optimization comes from.
    pub fn cost(&self, design: &PhysicalDesign, query: &Query) -> f64 {
        self.cost_calls.fetch_add(1, Ordering::Relaxed);
        let skeletons = self.skeletons(query);
        let ctx = AccessContext {
            catalog: self.catalog,
            design,
            params: &self.optimizer.params,
            query,
        };

        // One enumeration per slot: all candidate paths + equality-bound
        // columns (for order satisfaction) + the unordered minimum.
        struct PathLite {
            cost: f64,
            order: Vec<pgdesign_query::ast::QueryColumn>,
        }
        let n_slots = query.slot_count() as usize;
        let mut slot_paths: Vec<Vec<PathLite>> = Vec::with_capacity(n_slots);
        let mut slot_unordered: Vec<f64> = Vec::with_capacity(n_slots);
        let mut slot_eq_bound: Vec<Vec<pgdesign_query::ast::QueryColumn>> =
            Vec::with_capacity(n_slots);
        for slot in 0..query.slot_count() {
            let prof = SlotProfile::build(&ctx, slot, &[]);
            let paths: Vec<PathLite> = access::access_paths(&ctx, slot, &[])
                .into_iter()
                .map(|p| PathLite {
                    cost: p.cost,
                    order: p.order,
                })
                .collect();
            let unordered = paths.iter().map(|p| p.cost).fold(f64::INFINITY, f64::min);
            slot_paths.push(paths);
            slot_unordered.push(unordered);
            slot_eq_bound.push(prof.eq_bound);
        }

        // Per-slot memo of native-order minima, keyed by the order vector
        // (orders borrow from the cached skeletons, so keys are slices).
        let mut order_memo: Vec<HashMap<&[u16], Option<f64>>> = vec![HashMap::new(); n_slots];

        let mut best = f64::INFINITY;
        for sk in skeletons.iter() {
            let mut total = sk.internal_cost;
            let mut feasible = true;
            for slot in 0..query.slot_count() {
                let s = slot as usize;
                match &sk.slot_orders[s] {
                    None => total += slot_unordered[s],
                    Some(order) => {
                        let min = match order_memo[s].get(order.as_slice()) {
                            Some(&cached) => cached,
                            None => {
                                let required: Vec<pgdesign_query::ast::QueryColumn> = order
                                    .iter()
                                    .map(|&c| pgdesign_query::ast::QueryColumn::new(slot, c))
                                    .collect();
                                let m = slot_paths[s]
                                    .iter()
                                    .filter(|p| {
                                        order_satisfies(&p.order, &required, &slot_eq_bound[s])
                                    })
                                    .map(|p| p.cost)
                                    .min_by(f64::total_cmp);
                                order_memo[s].insert(order.as_slice(), m);
                                m
                            }
                        };
                        match min {
                            Some(c) => total += c,
                            None => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                }
                if total >= best {
                    feasible = false;
                    break; // early exit: already worse
                }
            }
            if feasible && total < best {
                best = total;
            }
        }
        best
    }

    /// Full optimizer cost (no INUM reuse) for calibration/comparison.
    pub fn exact_cost(&self, design: &PhysicalDesign, query: &Query) -> f64 {
        self.optimizer.cost(self.catalog, design, query)
    }

    /// Weighted workload cost via the fast path.
    pub fn workload_cost(
        &self,
        design: &PhysicalDesign,
        workload: &pgdesign_query::Workload,
    ) -> f64 {
        workload.iter().map(|(q, w)| w * self.cost(design, q)).sum()
    }

    /// The skeleton set for a query (cached).
    ///
    /// On a miss, the interesting orders are computed *once* per query
    /// ([`interesting_orders_per_slot`]) and reused both for combination
    /// enumeration and, via [`Optimizer::optimize_skeletons`], across the
    /// per-combination skeleton builds (which also share one cardinality
    /// estimation).
    pub fn skeletons(&self, query: &Query) -> std::sync::Arc<Vec<Skeleton>> {
        let key = query_key(query);
        if let Some(found) = self.cache.read().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return found.skeletons.clone();
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let per_slot = interesting_orders_per_slot(query);
        let combos = combinations_from_orders(&per_slot);
        let skeletons = self
            .optimizer
            .optimize_skeletons(self.catalog, query, combos);
        self.skeletons_built
            .fetch_add(skeletons.len() as u64, Ordering::Relaxed);
        let arc = std::sync::Arc::new(skeletons);
        self.cache.write().insert(
            key,
            CacheEntry {
                skeletons: arc.clone(),
                table_mask: table_mask(query),
            },
        );
        arc
    }

    /// Number of cached queries.
    pub fn cached_queries(&self) -> usize {
        self.cache.read().len()
    }

    /// Drop all cached skeletons (e.g. after a full statistics refresh).
    pub fn invalidate(&self) {
        self.cache.write().clear();
    }

    /// Drop only the cached skeletons of queries touching `table` — the
    /// common "one table's statistics changed" case. Queries over other
    /// tables keep their skeletons (their cardinalities are unaffected).
    /// Entries whose table set overflowed the tracking mask are evicted
    /// conservatively; for a multi-table refresh, call this per table or
    /// fall back to [`Self::invalidate`].
    pub fn invalidate_table(&self, table: pgdesign_catalog::schema::TableId) {
        if table.0 >= 64 {
            // Outside the tracked id range: only the conservative entries
            // (ALL_TABLES) could involve it.
            self.cache.write().retain(|_, e| e.table_mask != ALL_TABLES);
            return;
        }
        let bit = 1u64 << table.0;
        self.cache.write().retain(|_, e| e.table_mask & bit == 0);
    }
}

/// The interesting orders of every slot, computed in one pass over the
/// query (the hoisted form of calling
/// [`interesting_slot_orders`] per consumer).
pub fn interesting_orders_per_slot(query: &Query) -> Vec<Vec<Vec<u16>>> {
    (0..query.slot_count())
        .map(|s| interesting_slot_orders(query, s))
        .collect()
}

/// Enumerate interesting-order combinations: the cartesian product of
/// `None ∪ interesting_orders(slot)` over slots, capped at `MAX_COMBOS`
/// (the all-`None` combination always included first).
pub fn order_combinations(query: &Query) -> Vec<Vec<Option<Vec<u16>>>> {
    combinations_from_orders(&interesting_orders_per_slot(query))
}

fn combinations_from_orders(per_slot: &[Vec<Vec<u16>>]) -> Vec<Vec<Option<Vec<u16>>>> {
    let mut out: Vec<Vec<Option<Vec<u16>>>> = vec![Vec::new()];
    for slot_orders in per_slot {
        let mut next = Vec::with_capacity(out.len() * (slot_orders.len() + 1));
        for prefix in &out {
            for opt in std::iter::once(None).chain(slot_orders.iter().map(|o| Some(o.clone()))) {
                let mut combo = prefix.clone();
                combo.push(opt);
                next.push(combo);
                if next.len() >= MAX_COMBOS {
                    break;
                }
            }
            if next.len() >= MAX_COMBOS {
                break;
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::design::Index;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_optimizer::JoinControl;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::parse_query;

    fn setup() -> (Catalog, Optimizer) {
        (sdss_catalog(0.02), Optimizer::new())
    }

    #[test]
    fn combinations_include_all_none() {
        let c = sdss_catalog(0.01);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let combos = order_combinations(&q);
        assert!(combos.contains(&vec![None, None]));
        // Join columns appear as orders.
        assert!(combos.iter().any(|c| c[0] == Some(vec![0])));
        assert!(combos.len() <= MAX_COMBOS);
    }

    #[test]
    fn inum_matches_exact_for_single_table_queries() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let sqls = [
            "SELECT ra FROM photoobj WHERE objid = 777",
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 18",
            "SELECT ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 102",
        ];
        for design in [
            PhysicalDesign::empty(),
            PhysicalDesign::with_indexes([Index::new(photo, vec![0])]),
            PhysicalDesign::with_indexes([
                Index::new(photo, vec![3, 6]),
                Index::new(photo, vec![1, 2]),
            ]),
        ] {
            for sql in sqls {
                let q = parse_query(&c.schema, sql).unwrap();
                let fast = inum.cost(&design, &q);
                let exact = inum.exact_cost(&design, &q);
                // Single-table: no NLJ issue; should agree tightly.
                assert!(
                    (fast - exact).abs() / exact < 0.01,
                    "{sql}: inum {fast} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn inum_is_close_to_exact_without_nestloop() {
        let (c, _) = setup();
        let opt = Optimizer::new().with_control(JoinControl {
            nestloop: false,
            ..Default::default()
        });
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 18, 11);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let spec = c.schema.table_by_name("specobj").unwrap().id;
        let designs = [
            PhysicalDesign::empty(),
            PhysicalDesign::with_indexes([
                Index::new(photo, vec![0]),
                Index::new(spec, vec![1]),
                Index::new(photo, vec![6]),
            ]),
        ];
        for design in &designs {
            for (q, _) in w.iter() {
                let fast = inum.cost(design, q);
                let exact = inum.exact_cost(design, q);
                assert!(
                    fast >= exact * 0.95,
                    "INUM must not undercut the optimizer: {fast} vs {exact}"
                );
                assert!(
                    fast <= exact * 1.30,
                    "INUM should stay close: {fast} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn cache_hits_accumulate() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type = 1").unwrap();
        let d = PhysicalDesign::empty();
        let _ = inum.cost(&d, &q);
        let s1 = inum.stats();
        assert_eq!(s1.cache_misses, 1);
        for _ in 0..5 {
            let _ = inum.cost(&d, &q);
        }
        let s2 = inum.stats();
        assert_eq!(s2.cache_misses, 1);
        assert_eq!(s2.cache_hits, 5);
        assert_eq!(inum.cached_queries(), 1);
    }

    #[test]
    fn different_literals_are_different_cache_entries() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let d = PhysicalDesign::empty();
        let q1 = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE ra < 10").unwrap();
        let q2 = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE ra < 300").unwrap();
        let _ = inum.cost(&d, &q1);
        let _ = inum.cost(&d, &q2);
        assert_eq!(inum.cached_queries(), 2);
    }

    #[test]
    fn invalidate_clears_cache() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type = 1").unwrap();
        let _ = inum.cost(&PhysicalDesign::empty(), &q);
        inum.invalidate();
        assert_eq!(inum.cached_queries(), 0);
    }

    #[test]
    fn invalidate_table_evicts_only_touching_queries() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let d = PhysicalDesign::empty();
        let photo_q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE type = 1").unwrap();
        let spec_q = parse_query(
            &c.schema,
            "SELECT zredshift FROM specobj WHERE zredshift < 0.1",
        )
        .unwrap();
        let join_q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        for q in [&photo_q, &spec_q, &join_q] {
            let _ = inum.cost(&d, q);
        }
        assert_eq!(inum.cached_queries(), 3);

        // Photoobj's stats changed: the pure-specobj query survives, the
        // photoobj query and the join are evicted.
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        inum.invalidate_table(photo);
        assert_eq!(inum.cached_queries(), 1);
        let misses_before = inum.stats().cache_misses;
        let _ = inum.cost(&d, &spec_q);
        assert_eq!(
            inum.stats().cache_misses,
            misses_before,
            "the untouched query must still be served from cache"
        );
        let _ = inum.cost(&d, &photo_q);
        assert_eq!(
            inum.stats().cache_misses,
            misses_before + 1,
            "the evicted query recomputes"
        );
    }

    #[test]
    fn design_changes_do_not_recompute_skeletons() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let q = parse_query(
            &c.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid AND p.r < 18",
        )
        .unwrap();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let _ = inum.cost(&PhysicalDesign::empty(), &q);
        let built_before = inum.stats().skeletons_built;
        for cols in [vec![0u16], vec![6], vec![0, 6], vec![1, 2]] {
            let d = PhysicalDesign::with_indexes([Index::new(photo, cols)]);
            let _ = inum.cost(&d, &q);
        }
        assert_eq!(
            inum.stats().skeletons_built,
            built_before,
            "re-costing designs must reuse cached skeletons"
        );
    }

    #[test]
    fn index_benefit_visible_through_inum() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let q = parse_query(&c.schema, "SELECT ra FROM photoobj WHERE objid = 5").unwrap();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let base = inum.cost(&PhysicalDesign::empty(), &q);
        let tuned = inum.cost(
            &PhysicalDesign::with_indexes([Index::new(photo, vec![0])]),
            &q,
        );
        assert!(tuned < base / 100.0);
    }

    #[test]
    fn workload_cost_accumulates() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 3);
        let d = PhysicalDesign::empty();
        let total = inum.workload_cost(&d, &w);
        let sum: f64 = w.iter().map(|(q, wt)| wt * inum.cost(&d, q)).sum();
        assert!((total - sum).abs() < 1e-9);
    }

    #[test]
    fn prepare_workload_prewarms() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 3);
        inum.prepare_workload(&w);
        let misses_after_prepare = inum.stats().cache_misses;
        let _ = inum.workload_cost(&PhysicalDesign::empty(), &w);
        assert_eq!(inum.stats().cache_misses, misses_after_prepare);
    }

    #[test]
    fn partitioned_designs_reuse_skeletons() {
        let (c, opt) = setup();
        let inum = Inum::new(&c, &opt);
        let q = parse_query(&c.schema, "SELECT ra, dec FROM photoobj WHERE ra < 10").unwrap();
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let base = inum.cost(&PhysicalDesign::empty(), &q);
        let built = inum.stats().skeletons_built;
        let mut d = PhysicalDesign::empty();
        d.set_vertical(pgdesign_catalog::design::VerticalPartitioning::new(
            photo,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let part = inum.cost(&d, &q);
        assert_eq!(
            inum.stats().skeletons_built,
            built,
            "partition extension reuses cache"
        );
        assert!(
            part < base,
            "narrow fragment should be cheaper: {part} vs {base}"
        );
    }
}
