//! Cache keys for the skeleton cache.

use pgdesign_query::ast::Query;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Hash key identifying a query (template *and* literals — selectivities
/// feed the internal cost, so literals matter).
pub(crate) fn query_key(query: &Query) -> u64 {
    use pgdesign_catalog::types::Value;
    use pgdesign_query::ast::{Aggregate, PredOp};

    fn hash_value<H: Hasher>(v: &Value, h: &mut H) {
        match v {
            Value::Null => 0u8.hash(h),
            Value::Int(i) => {
                1u8.hash(h);
                i.hash(h);
            }
            Value::Float(x) => {
                2u8.hash(h);
                x.to_bits().hash(h);
            }
            Value::Str(s) => {
                3u8.hash(h);
                s.hash(h);
            }
            Value::Bool(b) => {
                4u8.hash(h);
                b.hash(h);
            }
        }
    }

    let mut h = DefaultHasher::new();
    for t in &query.tables {
        t.table.0.hash(&mut h);
    }
    query.select_star.hash(&mut h);
    for p in &query.projection {
        p.hash(&mut h);
    }
    for a in &query.aggregates {
        std::mem::discriminant(a).hash(&mut h);
        if let Aggregate::Count(c)
        | Aggregate::Sum(c)
        | Aggregate::Avg(c)
        | Aggregate::Min(c)
        | Aggregate::Max(c) = a
        {
            c.hash(&mut h);
        }
    }
    for f in &query.filters {
        f.col.hash(&mut h);
        match &f.op {
            PredOp::Cmp(op, v) => {
                0u8.hash(&mut h);
                op.hash(&mut h);
                hash_value(v, &mut h);
            }
            PredOp::Between(a, b) => {
                1u8.hash(&mut h);
                hash_value(a, &mut h);
                hash_value(b, &mut h);
            }
            PredOp::InList(vs) => {
                2u8.hash(&mut h);
                for v in vs {
                    hash_value(v, &mut h);
                }
            }
            PredOp::IsNull => 3u8.hash(&mut h),
            PredOp::IsNotNull => 4u8.hash(&mut h),
        }
    }
    for j in &query.joins {
        j.left.hash(&mut h);
        j.right.hash(&mut h);
    }
    for g in &query.group_by {
        g.hash(&mut h);
    }
    for o in &query.order_by {
        o.col.hash(&mut h);
        o.desc.hash(&mut h);
    }
    query.limit.hash(&mut h);
    h.finish()
}
