//! Cache keys — the *cell identity* of the two INUM cache levels.
//!
//! Both the skeleton cache ([`crate::Inum`]) and the incremental cost
//! matrix ([`crate::CostMatrix`]) key a query by [`query_cell_key`]: two
//! queries with the same key have identical skeletons and identical
//! matrix cells, so [`crate::CostMatrix::add_query`] reuses the resident
//! `QueryMatrix` slot of a same-key query instead of recomputing its
//! cells. Candidate cell identity is the [`pgdesign_catalog::design::Index`]
//! value itself (table + column list), which
//! [`crate::CostMatrix::add_candidate`] dedupes on.

use pgdesign_query::ast::Query;
use std::hash::{Hash, Hasher};

/// FNV-1a, the cache-key hasher. Key derivation sits on the epoch hot
/// path (every [`crate::CostMatrix::add_queries`] call re-keys the whole
/// epoch to find resident queries), where SipHash's per-write overhead
/// was a measurable slice of the incremental update; FNV-1a is a few
/// multiplies per byte and needs no DoS resistance here — keys never
/// leave the process and collisions only cost a (deterministic) cache
/// mix-up on adversarial input we don't take.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

/// The cell-identity key of a query: a hash over its template *and*
/// literals (selectivities feed the internal cost, so literals matter).
/// Equal keys ⇒ equal skeletons and equal matrix cells.
pub fn query_cell_key(query: &Query) -> u64 {
    query_key(query)
}

/// Hash key identifying a query (template *and* literals — selectivities
/// feed the internal cost, so literals matter).
pub(crate) fn query_key(query: &Query) -> u64 {
    use pgdesign_catalog::types::Value;
    use pgdesign_query::ast::{Aggregate, PredOp};

    fn hash_value<H: Hasher>(v: &Value, h: &mut H) {
        match v {
            Value::Null => 0u8.hash(h),
            Value::Int(i) => {
                1u8.hash(h);
                i.hash(h);
            }
            Value::Float(x) => {
                2u8.hash(h);
                x.to_bits().hash(h);
            }
            Value::Str(s) => {
                3u8.hash(h);
                s.hash(h);
            }
            Value::Bool(b) => {
                4u8.hash(h);
                b.hash(h);
            }
        }
    }

    let mut h = Fnv1a::new();
    for t in &query.tables {
        t.table.0.hash(&mut h);
    }
    query.select_star.hash(&mut h);
    for p in &query.projection {
        p.hash(&mut h);
    }
    for a in &query.aggregates {
        std::mem::discriminant(a).hash(&mut h);
        if let Aggregate::Count(c)
        | Aggregate::Sum(c)
        | Aggregate::Avg(c)
        | Aggregate::Min(c)
        | Aggregate::Max(c) = a
        {
            c.hash(&mut h);
        }
    }
    for f in &query.filters {
        f.col.hash(&mut h);
        match &f.op {
            PredOp::Cmp(op, v) => {
                0u8.hash(&mut h);
                op.hash(&mut h);
                hash_value(v, &mut h);
            }
            PredOp::Between(a, b) => {
                1u8.hash(&mut h);
                hash_value(a, &mut h);
                hash_value(b, &mut h);
            }
            PredOp::InList(vs) => {
                2u8.hash(&mut h);
                for v in vs {
                    hash_value(v, &mut h);
                }
            }
            PredOp::IsNull => 3u8.hash(&mut h),
            PredOp::IsNotNull => 4u8.hash(&mut h),
        }
    }
    for j in &query.joins {
        j.left.hash(&mut h);
        j.right.hash(&mut h);
    }
    for g in &query.group_by {
        g.hash(&mut h);
    }
    for o in &query.order_by {
        o.col.hash(&mut h);
        o.desc.hash(&mut h);
    }
    query.limit.hash(&mut h);
    h.finish()
}
