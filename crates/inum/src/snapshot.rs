//! Lock-free reader snapshots of the cost matrix.
//!
//! A [`crate::CostMatrix`] is `&mut`-exclusive: one writer (COLT, an
//! advisor, a session driver) mutates candidates and queries in place. The
//! what-if *serving* story needs the opposite shape — many readers costing
//! configurations concurrently while the writer keeps rotating epochs. The
//! split here follows the classic read-copy-update idiom:
//!
//! - [`MatrixSnapshot`] is an immutable, self-contained copy of the
//!   matrix's cells and registries (no borrow of the owning
//!   [`crate::Inum`]), tagged with a strictly monotonic publication
//!   generation. All read methods of the matrix are available on it.
//! - [`PublishSlot`] is the shared mailbox: the writer swaps in a fresh
//!   `Arc<MatrixSnapshot>` under a (vendored `parking_lot`) write lock —
//!   writer-side only; readers never touch the lock on the lookup path.
//! - [`MatrixReader`] is a cheap `Clone + Send + Sync` handle pinning one
//!   generation. Lookups are pure arithmetic over the pinned cells —
//!   zero optimizer calls, zero locks, zero allocation — and stay
//!   consistent (same generation) for as long as the handle is held.
//!   [`MatrixReader::is_stale`] is a single atomic load;
//!   [`MatrixReader::refresh`] re-pins the latest generation.
//!
//! Publication is copy-on-write at the mutation sites: query and split
//! payloads are `Arc`-shared between the writer and its snapshots, so
//! [`crate::CostMatrix::publish`] clones `Arc`s plus the small registry
//! vectors — it pays for the epoch's drift, not the matrix size.

use crate::matrix::{
    CandidateBitset, CostMatrix, FragmentBitset, JointConfig, JointToggle, MatrixCore, SplitBitset,
};
use parking_lot::RwLock;
use pgdesign_catalog::design::{HorizontalPartitioning, Index, PhysicalDesign};
use pgdesign_catalog::schema::TableId;
use pgdesign_query::Workload;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lookup counters shared by every snapshot published through one slot.
/// Reader-side increments are `Relaxed` — they are statistics, not
/// synchronization — so the lookup hot path stays wait-free.
#[derive(Debug, Default)]
pub(crate) struct ReaderCounters {
    lookups: AtomicU64,
    partition_lookups: AtomicU64,
}

/// The writer→readers mailbox: holds the current published snapshot and
/// its generation. The lock guards *publication only*; readers acquire it
/// just to pin a snapshot (`Arc` clone, nanoseconds) and never on lookups.
pub(crate) struct PublishSlot {
    current: RwLock<Arc<MatrixSnapshot>>,
    /// Generation of the snapshot in `current`, readable without the
    /// lock — this is what makes [`MatrixReader::is_stale`] one atomic
    /// load.
    published: AtomicU64,
    counters: Arc<ReaderCounters>,
}

impl PublishSlot {
    /// A new slot with `core` published as generation 0, so readers
    /// acquired before the first explicit publish still see a complete
    /// matrix.
    pub(crate) fn new(core: MatrixCore) -> Self {
        Self::new_at(core, 0)
    }

    /// A new slot with `core` published as `generation` — used by a warm
    /// restore ([`crate::matrix::persist`]) so publication numbering
    /// continues where the durable snapshot left off instead of
    /// restarting at 0.
    pub(crate) fn new_at(core: MatrixCore, generation: u64) -> Self {
        let counters = Arc::new(ReaderCounters::default());
        let snapshot = Arc::new(MatrixSnapshot {
            core,
            generation,
            counters: Arc::clone(&counters),
        });
        PublishSlot {
            current: RwLock::new(snapshot),
            published: AtomicU64::new(generation),
            counters,
        }
    }

    /// Publish `core` as the next generation and return it. Existing
    /// pinned snapshots are untouched — they keep serving their
    /// generation until the last handle drops.
    pub(crate) fn publish(&self, core: MatrixCore) -> u64 {
        let mut guard = self.current.write();
        let generation = self.published.load(Ordering::Relaxed) + 1;
        *guard = Arc::new(MatrixSnapshot {
            core,
            generation,
            counters: Arc::clone(&self.counters),
        });
        // Release-publish the generation *after* the swap so a reader that
        // observes generation g through `published` finds (at least) g in
        // `current`.
        self.published.store(generation, Ordering::Release);
        generation
    }

    /// Generation of the latest published snapshot (single atomic load).
    pub(crate) fn published(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Pin the latest published snapshot.
    pub(crate) fn current(&self) -> Arc<MatrixSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Total configuration-cost lookups served by snapshot readers.
    pub(crate) fn reader_lookups(&self) -> u64 {
        self.counters.lookups.load(Ordering::Relaxed)
    }

    /// The subset of reader lookups that costed a partition-touched
    /// configuration.
    pub(crate) fn reader_partition_lookups(&self) -> u64 {
        self.counters.partition_lookups.load(Ordering::Relaxed)
    }
}

/// An immutable, published generation of the cost matrix.
///
/// Carries every *read* method of [`CostMatrix`] — `cost`, `joint_cost`,
/// deltas, registries — served from owned cells with no lock and no
/// [`crate::Inum`] borrow, so it is freely `Send + Sync` across threads.
/// Obtained via [`CostMatrix::reader`] (or a `TuningSession`'s reader) and
/// normally accessed through the [`MatrixReader`] handle's `Deref`.
pub struct MatrixSnapshot {
    core: MatrixCore,
    generation: u64,
    counters: Arc<ReaderCounters>,
}

impl MatrixSnapshot {
    /// The publication generation of this snapshot: 0 for the build-time
    /// snapshot, then +1 per [`CostMatrix::publish`]. Strictly monotonic
    /// across publishes of one matrix.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The owned cell payload, for the durable-snapshot codec
    /// ([`crate::matrix::persist`]) — a published snapshot is exactly the
    /// consistent, generation-numbered state worth writing to disk.
    pub(crate) fn core(&self) -> &MatrixCore {
        &self.core
    }

    /// The writer's *rotation* generation at publish time (bumped by query
    /// add/retire — the value [`CostMatrix::generation`] returns). Distinct
    /// from [`Self::generation`], which counts publications.
    pub fn rotation_generation(&self) -> u64 {
        self.core.generation()
    }

    /// The workload this snapshot was computed over (retired entries
    /// included; see [`Self::active_query_ids`]).
    pub fn workload(&self) -> &Workload {
        self.core.workload()
    }

    /// Total query slots (active + retired).
    pub fn n_queries(&self) -> usize {
        self.core.n_queries()
    }

    /// Total candidate slots (live + freed).
    pub fn n_candidates(&self) -> usize {
        self.core.n_candidates()
    }

    /// Live `(id, index)` candidates.
    pub fn candidates(&self) -> impl Iterator<Item = (usize, &Index)> {
        self.core.candidates()
    }

    /// The index registered under `id`, if live.
    pub fn candidate(&self, id: usize) -> Option<&Index> {
        self.core.candidate(id)
    }

    /// The id `index` is registered under, if any.
    pub fn candidate_id(&self, index: &Index) -> Option<usize> {
        self.core.candidate_id(index)
    }

    /// The active workload (retired slots dropped), weights included.
    pub fn active_workload(&self) -> Workload {
        self.core.active_workload()
    }

    /// Ids of the active (non-retired) query slots.
    pub fn active_query_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.core.active_query_ids()
    }

    /// Whether query slot `id` is active.
    pub fn query_active(&self, id: usize) -> bool {
        self.core.query_active(id)
    }

    /// Weight of query slot `id` (0 if retired/out of range).
    pub fn query_weight(&self, id: usize) -> f64 {
        self.core.query_weight(id)
    }

    /// An empty configuration sized for this snapshot.
    pub fn empty_config(&self) -> CandidateBitset {
        self.core.empty_config()
    }

    /// A configuration holding exactly `ids`.
    pub fn config_of<I: IntoIterator<Item = usize>>(&self, ids: I) -> CandidateBitset {
        self.core.config_of(ids)
    }

    /// The [`PhysicalDesign`] a configuration denotes.
    pub fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        self.core.design_of(config)
    }

    /// Cost of `query_id` under the configuration — pure lookups against
    /// the pinned cells; no lock, no optimizer call.
    pub fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64 {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        self.core
            .cost_toggled(query_id, config, usize::MAX, usize::MAX)
    }

    /// Cost under `config ∪ {extra}` without materializing the union.
    pub fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64 {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        self.core.cost_toggled(query_id, config, extra, usize::MAX)
    }

    /// Cost under `config ∖ {removed}` without materializing the
    /// difference.
    pub fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64 {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        self.core
            .cost_toggled(query_id, config, usize::MAX, removed)
    }

    /// Cost change from adding `cand` (negative = improvement).
    pub fn delta_add(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_plus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Cost change from removing `cand` (positive = regression).
    pub fn delta_remove(&self, query_id: usize, config: &CandidateBitset, cand: usize) -> f64 {
        self.cost_minus(query_id, config, cand) - self.cost(query_id, config)
    }

    /// Weighted workload cost under the configuration (active queries
    /// only).
    pub fn workload_cost(&self, config: &CandidateBitset) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.query_weight(qi) * self.cost(qi, config))
            .sum()
    }

    /// Weighted workload cost under `config ∪ {extra}`.
    pub fn workload_cost_plus(&self, config: &CandidateBitset, extra: usize) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.query_weight(qi) * self.cost_plus(qi, config, extra))
            .sum()
    }

    /// Number of registered fragment candidates.
    pub fn n_fragments(&self) -> usize {
        self.core.n_fragments()
    }

    /// Number of registered split candidates.
    pub fn n_splits(&self) -> usize {
        self.core.n_splits()
    }

    /// The (normalised) column group of a registered fragment.
    pub fn fragment_columns(&self, id: usize) -> &[u16] {
        self.core.fragment_columns(id)
    }

    /// The table a registered fragment belongs to.
    pub fn fragment_table(&self, id: usize) -> TableId {
        self.core.fragment_table(id)
    }

    /// The partitioning of a registered split candidate.
    pub fn split(&self, id: usize) -> &HorizontalPartitioning {
        self.core.split(id)
    }

    /// An empty joint configuration sized for this snapshot.
    pub fn empty_joint(&self) -> JointConfig {
        self.core.empty_joint()
    }

    /// The [`PhysicalDesign`] a joint configuration denotes.
    pub fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign {
        self.core.joint_design_of(cfg)
    }

    /// Cost of `query_id` under a joint configuration.
    pub fn joint_cost(&self, query_id: usize, cfg: &JointConfig) -> f64 {
        self.joint_cost_with(query_id, cfg, &JointToggle::default())
    }

    /// Cost of `query_id` under `cfg` with `toggle`'s virtual edits
    /// applied.
    pub fn joint_cost_with(&self, query_id: usize, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        self.counters.lookups.fetch_add(1, Ordering::Relaxed);
        if !cfg.partitions_empty() || !toggle.is_noop() {
            self.counters
                .partition_lookups
                .fetch_add(1, Ordering::Relaxed);
        }
        self.core.joint_cost_with(query_id, cfg, toggle)
    }

    /// Weighted workload cost under a joint configuration.
    pub fn joint_workload_cost(&self, cfg: &JointConfig) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.query_weight(qi) * self.joint_cost(qi, cfg))
            .sum()
    }

    /// Weighted workload cost under `cfg` with `toggle` applied.
    pub fn joint_workload_cost_with(&self, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        self.active_query_ids()
            .map(|qi| self.core.query_weight(qi) * self.joint_cost_with(qi, cfg, toggle))
            .sum()
    }

    /// Workload-cost change from replacing fragments `a`, `b` with their
    /// merge `merged` (negative = improvement).
    pub fn delta_merge(&self, cfg: &JointConfig, a: usize, b: usize, merged: usize) -> f64 {
        self.joint_workload_cost_with(cfg, &JointToggle::merge(a, b, merged))
            - self.joint_workload_cost(cfg)
    }

    /// Workload-cost change from applying horizontal split `split`
    /// (negative = improvement).
    pub fn delta_split(&self, cfg: &JointConfig, split: usize) -> f64 {
        self.joint_workload_cost_with(cfg, &JointToggle::split(split))
            - self.joint_workload_cost(cfg)
    }
}

/// A cheap, cloneable handle on a published [`MatrixSnapshot`].
///
/// Dereferences to the pinned snapshot, so every read method is available
/// directly (`reader.cost(..)`, `reader.joint_cost(..)`). The pinned
/// generation never changes under the handle — clone-then-rotate keeps
/// the clone on the old generation — which is what makes concurrent
/// lookups consistent. Check [`Self::is_stale`] (one atomic load) and call
/// [`Self::refresh`] at whatever staleness budget the caller tolerates.
#[derive(Clone)]
pub struct MatrixReader {
    snapshot: Arc<MatrixSnapshot>,
    slot: Arc<PublishSlot>,
}

impl MatrixReader {
    pub(crate) fn new(snapshot: Arc<MatrixSnapshot>, slot: Arc<PublishSlot>) -> Self {
        MatrixReader { snapshot, slot }
    }

    /// The pinned snapshot (also reachable through `Deref`).
    pub fn snapshot(&self) -> &MatrixSnapshot {
        &self.snapshot
    }

    /// Whether the writer has published a newer generation than the one
    /// pinned here. One atomic load — safe to call per lookup.
    pub fn is_stale(&self) -> bool {
        self.slot.published() != self.snapshot.generation
    }

    /// Re-pin the latest published generation; returns the generation now
    /// pinned. Takes the publish lock briefly (an `Arc` clone) — never on
    /// the lookup path.
    pub fn refresh(&mut self) -> u64 {
        self.snapshot = self.slot.current();
        self.snapshot.generation
    }

    /// Latest published generation (the writer side's counter) — what
    /// [`Self::refresh`] would pin right now.
    pub fn latest_generation(&self) -> u64 {
        self.slot.published()
    }
}

impl Deref for MatrixReader {
    type Target = MatrixSnapshot;
    fn deref(&self) -> &MatrixSnapshot {
        &self.snapshot
    }
}

/// Read-only view of a cost matrix — implemented by both the writer-side
/// [`CostMatrix`] and the published [`MatrixSnapshot`], so analysis code
/// (the interaction sweep, report helpers) can run unchanged against
/// either: `&dyn MatrixView` at the call site picks the live matrix or a
/// pinned snapshot.
///
/// Object-safe by construction: iterator-returning and generic methods of
/// the concrete types appear here in owned/slice form
/// ([`Self::active_query_ids_vec`], [`Self::config_with`]).
pub trait MatrixView {
    /// Total query slots (active + retired).
    fn n_queries(&self) -> usize;
    /// Total candidate slots (live + freed).
    fn n_candidates(&self) -> usize;
    /// Number of registered fragment candidates.
    fn n_fragments(&self) -> usize;
    /// Number of registered split candidates.
    fn n_splits(&self) -> usize;
    /// The index registered under `id`, if live.
    fn candidate(&self, id: usize) -> Option<&Index>;
    /// The id `index` is registered under, if any.
    fn candidate_id(&self, index: &Index) -> Option<usize>;
    /// Whether query slot `id` is active.
    fn query_active(&self, id: usize) -> bool;
    /// Weight of query slot `id` (0 if retired/out of range).
    fn query_weight(&self, id: usize) -> f64;
    /// Ids of the active (non-retired) query slots.
    fn active_query_ids_vec(&self) -> Vec<usize>;
    /// Cost of `query_id` under the configuration.
    fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64;
    /// Cost under `config ∪ {extra}`.
    fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64;
    /// Cost under `config ∖ {removed}`.
    fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64;
    /// Cost of `query_id` under a joint configuration.
    fn joint_cost(&self, query_id: usize, cfg: &JointConfig) -> f64;
    /// Cost of `query_id` under `cfg` with `toggle` applied.
    fn joint_cost_with(&self, query_id: usize, cfg: &JointConfig, toggle: &JointToggle) -> f64;
    /// The [`PhysicalDesign`] a configuration denotes.
    fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign;
    /// The [`PhysicalDesign`] a joint configuration denotes.
    fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign;

    /// An empty configuration sized for this view.
    fn empty_config(&self) -> CandidateBitset {
        CandidateBitset::new(self.n_candidates())
    }

    /// A configuration holding exactly `ids`.
    fn config_with(&self, ids: &[usize]) -> CandidateBitset {
        CandidateBitset::from_ids(self.n_candidates(), ids.iter().copied())
    }

    /// An empty joint configuration sized for this view.
    fn empty_joint(&self) -> JointConfig {
        JointConfig {
            indexes: self.empty_config(),
            fragments: FragmentBitset::new(self.n_fragments()),
            splits: SplitBitset::new(self.n_splits()),
        }
    }

    /// Weighted workload cost under the configuration (active queries
    /// only).
    fn workload_cost(&self, config: &CandidateBitset) -> f64 {
        self.active_query_ids_vec()
            .into_iter()
            .map(|qi| self.query_weight(qi) * self.cost(qi, config))
            .sum()
    }
}

impl MatrixView for CostMatrix<'_> {
    fn n_queries(&self) -> usize {
        CostMatrix::n_queries(self)
    }
    fn n_candidates(&self) -> usize {
        CostMatrix::n_candidates(self)
    }
    fn n_fragments(&self) -> usize {
        CostMatrix::n_fragments(self)
    }
    fn n_splits(&self) -> usize {
        CostMatrix::n_splits(self)
    }
    fn candidate(&self, id: usize) -> Option<&Index> {
        CostMatrix::candidate(self, id)
    }
    fn candidate_id(&self, index: &Index) -> Option<usize> {
        CostMatrix::candidate_id(self, index)
    }
    fn query_active(&self, id: usize) -> bool {
        CostMatrix::query_active(self, id)
    }
    fn query_weight(&self, id: usize) -> f64 {
        CostMatrix::query_weight(self, id)
    }
    fn active_query_ids_vec(&self) -> Vec<usize> {
        CostMatrix::active_query_ids(self).collect()
    }
    fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64 {
        CostMatrix::cost(self, query_id, config)
    }
    fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64 {
        CostMatrix::cost_plus(self, query_id, config, extra)
    }
    fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64 {
        CostMatrix::cost_minus(self, query_id, config, removed)
    }
    fn joint_cost(&self, query_id: usize, cfg: &JointConfig) -> f64 {
        CostMatrix::joint_cost(self, query_id, cfg)
    }
    fn joint_cost_with(&self, query_id: usize, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        CostMatrix::joint_cost_with(self, query_id, cfg, toggle)
    }
    fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        CostMatrix::design_of(self, config)
    }
    fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign {
        CostMatrix::joint_design_of(self, cfg)
    }
}

impl MatrixView for MatrixSnapshot {
    fn n_queries(&self) -> usize {
        MatrixSnapshot::n_queries(self)
    }
    fn n_candidates(&self) -> usize {
        MatrixSnapshot::n_candidates(self)
    }
    fn n_fragments(&self) -> usize {
        MatrixSnapshot::n_fragments(self)
    }
    fn n_splits(&self) -> usize {
        MatrixSnapshot::n_splits(self)
    }
    fn candidate(&self, id: usize) -> Option<&Index> {
        MatrixSnapshot::candidate(self, id)
    }
    fn candidate_id(&self, index: &Index) -> Option<usize> {
        MatrixSnapshot::candidate_id(self, index)
    }
    fn query_active(&self, id: usize) -> bool {
        MatrixSnapshot::query_active(self, id)
    }
    fn query_weight(&self, id: usize) -> f64 {
        MatrixSnapshot::query_weight(self, id)
    }
    fn active_query_ids_vec(&self) -> Vec<usize> {
        MatrixSnapshot::active_query_ids(self).collect()
    }
    fn cost(&self, query_id: usize, config: &CandidateBitset) -> f64 {
        MatrixSnapshot::cost(self, query_id, config)
    }
    fn cost_plus(&self, query_id: usize, config: &CandidateBitset, extra: usize) -> f64 {
        MatrixSnapshot::cost_plus(self, query_id, config, extra)
    }
    fn cost_minus(&self, query_id: usize, config: &CandidateBitset, removed: usize) -> f64 {
        MatrixSnapshot::cost_minus(self, query_id, config, removed)
    }
    fn joint_cost(&self, query_id: usize, cfg: &JointConfig) -> f64 {
        MatrixSnapshot::joint_cost(self, query_id, cfg)
    }
    fn joint_cost_with(&self, query_id: usize, cfg: &JointConfig, toggle: &JointToggle) -> f64 {
        MatrixSnapshot::joint_cost_with(self, query_id, cfg, toggle)
    }
    fn design_of(&self, config: &CandidateBitset) -> PhysicalDesign {
        MatrixSnapshot::design_of(self, config)
    }
    fn joint_design_of(&self, cfg: &JointConfig) -> PhysicalDesign {
        MatrixSnapshot::joint_design_of(self, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CostMatrix;
    use crate::Inum;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    // The whole point of the split: snapshots and readers cross threads.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn snapshot_and_reader_are_send_sync() {
        assert_send_sync::<MatrixSnapshot>();
        assert_send_sync::<MatrixReader>();
        assert_send_sync::<PublishSlot>();
    }

    #[test]
    fn published_generation_is_immutable_and_monotonic() {
        let catalog = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&catalog, &opt);
        let w = sdss_workload(&catalog, 6, 77);
        let cands = workload_candidates(&catalog, &w, &CandidateConfig::default());
        let mut matrix = CostMatrix::build(&inum, &w, &cands.indexes);

        let gen0 = matrix.reader();
        assert_eq!(gen0.generation(), 0, "build publishes generation 0");
        let config = gen0.config_of(0..cands.indexes.len().min(4));
        let baseline: Vec<f64> = (0..gen0.n_queries())
            .map(|qi| gen0.cost(qi, &config))
            .collect();

        // Clone *before* rotation: both handles pin the old generation.
        let cloned = gen0.clone();

        // Writer mutates and publishes twice; generations must move
        // strictly forward.
        let extra = sdss_workload(&catalog, 2, 501);
        matrix.add_queries(extra.iter());
        let g1 = matrix.publish();
        matrix.set_query_weight(0, 42.0);
        let g2 = matrix.publish();
        assert!(g1 >= 1 && g2 > g1, "publish generations strictly increase");
        assert_eq!(matrix.published_generation(), g2);

        // Old handles: same generation, same cells, bit-for-bit.
        for handle in [&gen0, &cloned] {
            assert_eq!(handle.generation(), 0);
            assert!(handle.is_stale());
            assert_eq!(handle.n_queries(), baseline.len());
            for (qi, &c) in baseline.iter().enumerate() {
                assert_eq!(handle.cost(qi, &config), c, "generation 0 cells moved");
            }
        }

        // Refresh re-pins the latest generation and sees the new weight.
        let mut fresh = cloned;
        assert_eq!(fresh.refresh(), g2);
        assert!(!fresh.is_stale());
        assert_eq!(fresh.query_weight(0), 42.0);
        assert_eq!(gen0.query_weight(0), w.entries[0].weight);
    }

    #[test]
    fn reader_lookups_do_not_touch_the_inum() {
        let catalog = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&catalog, &opt);
        let w = sdss_workload(&catalog, 5, 99);
        let cands = workload_candidates(&catalog, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);

        let reader = matrix.reader();
        let before = inum.stats();
        let before_matrix = inum.matrix_stats();
        let cfg = reader.config_of([0]);
        let mut acc = 0.0;
        for qi in 0..reader.n_queries() {
            acc += reader.cost(qi, &cfg);
            acc += reader.joint_cost(qi, &reader.empty_joint());
        }
        assert!(acc.is_finite());
        // The reader hot path is pinned at zero optimizer/Inum traffic:
        // snapshot lookups count on the shared reader counters instead.
        assert_eq!(inum.stats(), before);
        assert_eq!(inum.matrix_stats().lookups, before_matrix.lookups);
        assert_eq!(matrix.reader_lookups(), 2 * reader.n_queries() as u64);
    }

    #[test]
    fn view_trait_serves_matrix_and_snapshot_identically() {
        let catalog = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&catalog, &opt);
        let w = sdss_workload(&catalog, 5, 13);
        let cands = workload_candidates(&catalog, &w, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, &w, &cands.indexes);
        let reader = matrix.reader();

        let views: [&dyn MatrixView; 2] = [&matrix, reader.snapshot()];
        let ids: Vec<usize> = (0..cands.indexes.len().min(3)).collect();
        let cfg = views[0].config_with(&ids);
        for qi in views[0].active_query_ids_vec() {
            let a = views[0].cost(qi, &cfg);
            let b = views[1].cost(qi, &cfg);
            assert_eq!(a, b, "matrix and snapshot disagree on Q{qi}");
        }
        assert_eq!(views[0].workload_cost(&cfg), views[1].workload_cost(&cfg));
    }
}
