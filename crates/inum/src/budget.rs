//! Deadline and work-budget tokens for cooperative cancellation.
//!
//! The tuning daemon bounds how long any one epoch may stall the writer:
//! hot mutation paths ([`CostMatrix::add_queries_budgeted`],
//! [`CostMatrix::add_candidates_budgeted`]) accept a [`WorkBudget`] and
//! check it between per-query cell units, committing completed work and
//! reporting the remainder so the caller can resume it next epoch.
//!
//! Time is read through an injectable [`Clock`] so tests drive expiry
//! deterministically with a [`ManualClock`]; production uses the
//! monotonic [`SystemClock`]. A [`WorkBudget`] can additionally (or
//! instead) carry a shared unit counter, which gives tests an exact,
//! clock-free way to cancel after N units.
//!
//! [`CostMatrix::add_queries_budgeted`]: crate::CostMatrix::add_queries_budgeted
//! [`CostMatrix::add_candidates_budgeted`]: crate::CostMatrix::add_candidates_budgeted

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source, injectable so deadline behavior is
/// deterministic under test.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: wall-progress via [`Instant`], origin at
/// construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A test clock that only moves when told to. Shared freely across
/// threads; `advance` uses a single atomic add, so concurrent workers
/// observe a consistent monotonic time.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

/// A point on a [`Clock`] after which work should stop. Cheap to clone
/// and check; workers poll [`Deadline::expired`] between work units.
#[derive(Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    at_nanos: u64,
}

impl Deadline {
    /// A deadline `after` from now on `clock`.
    pub fn after(clock: Arc<dyn Clock>, after: Duration) -> Self {
        let at_nanos = clock.now_nanos().saturating_add(after.as_nanos() as u64);
        Deadline { clock, at_nanos }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        self.clock.now_nanos() >= self.at_nanos
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        Duration::from_nanos(self.at_nanos.saturating_sub(self.clock.now_nanos()))
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("at_nanos", &self.at_nanos)
            .field("expired", &self.expired())
            .finish()
    }
}

/// A cancellation token threaded through budgeted mutation paths.
///
/// Carries an optional [`Deadline`] and an optional shared unit counter;
/// the budget is exhausted when either trips. [`WorkBudget::unlimited`]
/// never exhausts, so unbudgeted callers pay only a branch.
///
/// The unit counter is shared (`Arc<AtomicU64>`): parallel workers
/// consuming from the same budget drain one pool, which is exactly the
/// semantics an epoch-wide budget needs.
#[derive(Clone, Debug, Default)]
pub struct WorkBudget {
    deadline: Option<Deadline>,
    units: Option<Arc<AtomicU64>>,
}

impl WorkBudget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        WorkBudget {
            deadline: None,
            units: None,
        }
    }

    /// A budget that exhausts when `deadline` passes.
    pub fn with_deadline(deadline: Deadline) -> Self {
        WorkBudget {
            deadline: Some(deadline),
            units: None,
        }
    }

    /// A budget of exactly `units` work units (deterministic, clock-free).
    pub fn with_units(units: u64) -> Self {
        WorkBudget {
            deadline: None,
            units: Some(Arc::new(AtomicU64::new(units))),
        }
    }

    /// Add a unit cap to an existing budget (both limits then apply).
    pub fn and_units(mut self, units: u64) -> Self {
        self.units = Some(Arc::new(AtomicU64::new(units)));
        self
    }

    /// Is the budget spent? (Deadline passed, or unit pool empty.)
    pub fn exhausted(&self) -> bool {
        if let Some(d) = &self.deadline {
            if d.expired() {
                return true;
            }
        }
        if let Some(u) = &self.units {
            if u.load(Ordering::Relaxed) == 0 {
                return true;
            }
        }
        false
    }

    /// Try to pay for one work unit. Returns `false` — without consuming
    /// anything — once the budget is exhausted; work already paid for
    /// stays paid (completed units are always committed).
    pub fn try_consume(&self) -> bool {
        if let Some(d) = &self.deadline {
            if d.expired() {
                return false;
            }
        }
        if let Some(u) = &self.units {
            // Claim a unit atomically; racing workers each get at most
            // what is in the pool.
            return u
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = WorkBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.try_consume());
        }
        assert!(!b.exhausted());
    }

    #[test]
    fn unit_budget_is_exact() {
        let b = WorkBudget::with_units(3);
        assert!(b.try_consume());
        assert!(b.try_consume());
        assert!(b.try_consume());
        assert!(!b.try_consume());
        assert!(b.exhausted());
    }

    #[test]
    fn manual_clock_drives_deadline() {
        let clock = Arc::new(ManualClock::new());
        let d = Deadline::after(clock.clone() as Arc<dyn Clock>, Duration::from_millis(5));
        let b = WorkBudget::with_deadline(d.clone());
        assert!(!d.expired());
        assert!(b.try_consume());
        clock.advance(Duration::from_millis(4));
        assert!(!b.exhausted());
        clock.advance(Duration::from_millis(1));
        assert!(d.expired());
        assert!(!b.try_consume());
        assert!(b.exhausted());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn shared_unit_pool_drains_across_clones() {
        let b = WorkBudget::with_units(5);
        let b2 = b.clone();
        assert!(b.try_consume());
        assert!(b2.try_consume());
        assert!(b.try_consume());
        assert!(b2.try_consume());
        assert!(b.try_consume());
        assert!(!b2.try_consume());
    }

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
