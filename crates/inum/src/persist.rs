//! Durable codec for the cost matrix: snapshot payloads and edit records.
//!
//! This module turns a published [`MatrixSnapshot`] into the record
//! payloads of a `.pgds` snapshot file and a [`MatrixEdit`] journal into
//! `.pgdl` log records — and back. The storage framing (magic headers,
//! format version, per-record CRC, atomic rename, fsync discipline) lives
//! in `pgdesign-durability`; this module owns only the *meaning* of the
//! bytes. The vendored `serde` is a no-op shim, so everything here is an
//! explicit little-endian layout via `ByteWriter`/`ByteReader`.
//!
//! Layout invariants the decoder enforces rather than trusts:
//!
//! - every active query slot's stored cell key must equal the recomputed
//!   FNV-1a [`crate::key::query_cell_key`] of its query — cells are keyed
//!   by that public key, and a mismatch means the payload is not the
//!   matrix it claims to be;
//! - redundant state (`id_by_index`, `frags_by_table`, fragment column
//!   masks) is rebuilt from first principles on decode, never stored;
//! - a per-table statistics fingerprint of the catalog is stored in the
//!   header; on restore, tables whose fingerprint changed have their
//!   skeleton cache entries invalidated ([`Inum::invalidate_table`]) and
//!   only *their* queries' cells recomputed — staleness degrades the warm
//!   start, it never rejects the whole file and never serves a cost
//!   computed from outdated statistics.

// Decode/replay paths run on untrusted bytes; panicking escape hatches
// are compile errors in this module (tests are exempt).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use super::*;
use crate::MatrixSnapshot;
use pgdesign_catalog::types::Value;
use pgdesign_catalog::{Catalog, ColumnStats};
use pgdesign_durability::{ByteReader, ByteWriter, CodecError};
use pgdesign_query::ast::{
    Aggregate, CmpOp, FilterPredicate, JoinPredicate, OrderItem, PredOp, QueryTable,
};

/// One recorded mutation of a [`CostMatrix`] — the unit of the durable
/// edit log. Each variant stores exactly the public-API *inputs* of the
/// mutation; replaying a journal in order against an identical starting
/// state is deterministic (dedupe maps, LIFO free-list recycling and
/// parallel cell computation included), so no outputs are logged.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixEdit {
    /// [`CostMatrix::add_candidates`] (and `add_candidate`).
    AddCandidates(Vec<Index>),
    /// [`CostMatrix::remove_candidate`] of a live id.
    RemoveCandidate(usize),
    /// [`CostMatrix::add_queries`] (and `add_query`).
    AddQueries(Vec<(Query, f64)>),
    /// [`CostMatrix::retire_query`] of an active id.
    RetireQuery(usize),
    /// [`CostMatrix::set_query_weight`].
    SetQueryWeight(usize, f64),
    /// [`CostMatrix::register_fragment`].
    RegisterFragment(TableId, Vec<u16>),
    /// [`CostMatrix::register_split`].
    RegisterSplit(HorizontalPartitioning),
    /// [`CostMatrix::publish`] — the epoch boundary marker.
    Publish,
}

/// Why a payload could not be decoded. Both variants are graceful-fallback
/// signals (cold build), never panics.
#[derive(Debug)]
pub enum PersistError {
    /// Structural failure: the bytes ran out or stopped making sense.
    Codec(CodecError),
    /// Semantic failure: well-formed bytes describing an impossible or
    /// inconsistent matrix (bad tag, key mismatch, out-of-range table).
    Invalid(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Codec(e) => write!(f, "{e}"),
            PersistError::Invalid(what) => write!(f, "invalid snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

fn invalid(what: &'static str) -> PersistError {
    PersistError::Invalid(what)
}

// ---------------------------------------------------------------------------
// Catalog statistics fingerprints
// ---------------------------------------------------------------------------

struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

fn fingerprint_column(h: &mut Fnv64, c: &ColumnStats) {
    h.f64(c.ndv);
    h.f64(c.null_frac);
    h.f64(c.min);
    h.f64(c.max);
    match &c.histogram {
        None => h.u64(0),
        Some(hist) => {
            h.u64(1 + hist.bounds().len() as u64);
            for &b in hist.bounds() {
                h.f64(b);
            }
        }
    }
    h.u64(c.mcv.len() as u64);
    for &(v, f) in &c.mcv {
        h.f64(v);
        h.f64(f);
    }
    h.f64(c.avg_width);
    h.f64(c.correlation);
}

/// FNV-1a fingerprint of each table's statistics (row count plus every
/// column's full statistics), indexed by `TableId.0`. This is the
/// statistics-generation stamp stored in the snapshot header: a changed
/// fingerprint on restore marks that table's cells stale.
pub fn catalog_fingerprints(catalog: &Catalog) -> Vec<u64> {
    catalog
        .stats
        .iter()
        .map(|ts| {
            let mut h = Fnv64::new();
            h.u64(ts.row_count);
            h.u64(ts.columns.len() as u64);
            for c in &ts.columns {
                fingerprint_column(&mut h, c);
            }
            h.0
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Query AST codec
// ---------------------------------------------------------------------------

fn put_query_column(w: &mut ByteWriter, qc: &QueryColumn) {
    w.put_u16(qc.slot);
    w.put_u16(qc.column);
}

fn get_query_column(r: &mut ByteReader<'_>) -> Result<QueryColumn, PersistError> {
    Ok(QueryColumn::new(r.get_u16()?, r.get_u16()?))
}

fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(2);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Value::Bool(b) => {
            w.put_u8(4);
            w.put_bool(*b);
        }
    }
}

fn get_value(r: &mut ByteReader<'_>) -> Result<Value, PersistError> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Int(r.get_i64()?),
        2 => Value::Float(r.get_f64()?),
        3 => Value::Str(r.get_str()?),
        4 => Value::Bool(r.get_bool()?),
        _ => return Err(invalid("value tag")),
    })
}

fn put_pred_op(w: &mut ByteWriter, op: &PredOp) {
    match op {
        PredOp::Cmp(cmp, v) => {
            w.put_u8(0);
            w.put_u8(match cmp {
                CmpOp::Eq => 0,
                CmpOp::Lt => 1,
                CmpOp::Le => 2,
                CmpOp::Gt => 3,
                CmpOp::Ge => 4,
                CmpOp::Ne => 5,
            });
            put_value(w, v);
        }
        PredOp::Between(lo, hi) => {
            w.put_u8(1);
            put_value(w, lo);
            put_value(w, hi);
        }
        PredOp::InList(vs) => {
            w.put_u8(2);
            w.put_len(vs.len());
            for v in vs {
                put_value(w, v);
            }
        }
        PredOp::IsNull => w.put_u8(3),
        PredOp::IsNotNull => w.put_u8(4),
    }
}

fn get_pred_op(r: &mut ByteReader<'_>) -> Result<PredOp, PersistError> {
    Ok(match r.get_u8()? {
        0 => {
            let cmp = match r.get_u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Lt,
                2 => CmpOp::Le,
                3 => CmpOp::Gt,
                4 => CmpOp::Ge,
                5 => CmpOp::Ne,
                _ => return Err(invalid("cmp tag")),
            };
            PredOp::Cmp(cmp, get_value(r)?)
        }
        1 => PredOp::Between(get_value(r)?, get_value(r)?),
        2 => {
            let n = r.get_len()?;
            let mut vs = Vec::with_capacity(n);
            for _ in 0..n {
                vs.push(get_value(r)?);
            }
            PredOp::InList(vs)
        }
        3 => PredOp::IsNull,
        4 => PredOp::IsNotNull,
        _ => return Err(invalid("predicate tag")),
    })
}

fn put_query(w: &mut ByteWriter, q: &Query) {
    w.put_len(q.tables.len());
    for t in &q.tables {
        w.put_u32(t.table.0);
        match &t.alias {
            None => w.put_u8(0),
            Some(a) => {
                w.put_u8(1);
                w.put_str(a);
            }
        }
    }
    w.put_len(q.projection.len());
    for qc in &q.projection {
        put_query_column(w, qc);
    }
    w.put_len(q.aggregates.len());
    for a in &q.aggregates {
        match a {
            Aggregate::CountStar => w.put_u8(0),
            Aggregate::Count(qc) => {
                w.put_u8(1);
                put_query_column(w, qc);
            }
            Aggregate::Sum(qc) => {
                w.put_u8(2);
                put_query_column(w, qc);
            }
            Aggregate::Avg(qc) => {
                w.put_u8(3);
                put_query_column(w, qc);
            }
            Aggregate::Min(qc) => {
                w.put_u8(4);
                put_query_column(w, qc);
            }
            Aggregate::Max(qc) => {
                w.put_u8(5);
                put_query_column(w, qc);
            }
        }
    }
    w.put_bool(q.select_star);
    w.put_len(q.filters.len());
    for f in &q.filters {
        put_query_column(w, &f.col);
        put_pred_op(w, &f.op);
    }
    w.put_len(q.joins.len());
    for j in &q.joins {
        put_query_column(w, &j.left);
        put_query_column(w, &j.right);
    }
    w.put_len(q.group_by.len());
    for qc in &q.group_by {
        put_query_column(w, qc);
    }
    w.put_len(q.order_by.len());
    for o in &q.order_by {
        put_query_column(w, &o.col);
        w.put_bool(o.desc);
    }
    match q.limit {
        None => w.put_u8(0),
        Some(n) => {
            w.put_u8(1);
            w.put_u64(n);
        }
    }
}

fn get_query(r: &mut ByteReader<'_>) -> Result<Query, PersistError> {
    let mut q = Query::default();
    for _ in 0..r.get_len()? {
        let table = TableId(r.get_u32()?);
        let alias = match r.get_u8()? {
            0 => None,
            1 => Some(r.get_str()?),
            _ => return Err(invalid("alias tag")),
        };
        q.tables.push(QueryTable { table, alias });
    }
    for _ in 0..r.get_len()? {
        q.projection.push(get_query_column(r)?);
    }
    for _ in 0..r.get_len()? {
        q.aggregates.push(match r.get_u8()? {
            0 => Aggregate::CountStar,
            1 => Aggregate::Count(get_query_column(r)?),
            2 => Aggregate::Sum(get_query_column(r)?),
            3 => Aggregate::Avg(get_query_column(r)?),
            4 => Aggregate::Min(get_query_column(r)?),
            5 => Aggregate::Max(get_query_column(r)?),
            _ => return Err(invalid("aggregate tag")),
        });
    }
    q.select_star = r.get_bool()?;
    for _ in 0..r.get_len()? {
        let col = get_query_column(r)?;
        let op = get_pred_op(r)?;
        q.filters.push(FilterPredicate { col, op });
    }
    for _ in 0..r.get_len()? {
        let left = get_query_column(r)?;
        let right = get_query_column(r)?;
        q.joins.push(JoinPredicate { left, right });
    }
    for _ in 0..r.get_len()? {
        q.group_by.push(get_query_column(r)?);
    }
    for _ in 0..r.get_len()? {
        let col = get_query_column(r)?;
        let desc = r.get_bool()?;
        q.order_by.push(OrderItem { col, desc });
    }
    q.limit = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_u64()?),
        _ => return Err(invalid("limit tag")),
    };
    Ok(q)
}

// ---------------------------------------------------------------------------
// Cell payload codec
// ---------------------------------------------------------------------------

fn put_index(w: &mut ByteWriter, idx: &Index) {
    w.put_u32(idx.table.0);
    w.put_len(idx.columns.len());
    for &c in &idx.columns {
        w.put_u16(c);
    }
    w.put_bool(idx.unique);
}

fn get_index(r: &mut ByteReader<'_>) -> Result<Index, PersistError> {
    let table = TableId(r.get_u32()?);
    let n = r.get_len()?;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(r.get_u16()?);
    }
    let unique = r.get_bool()?;
    Ok(Index {
        table,
        columns,
        unique,
    })
}

fn put_params(w: &mut ByteWriter, p: &CostParams) {
    w.put_f64(p.seq_page_cost);
    w.put_f64(p.random_page_cost);
    w.put_f64(p.cpu_tuple_cost);
    w.put_f64(p.cpu_index_tuple_cost);
    w.put_f64(p.cpu_operator_cost);
    w.put_u64(p.effective_cache_pages);
    w.put_u64(p.work_mem_bytes);
    w.put_f64(p.index_only_heap_fetch_frac);
}

fn get_params(r: &mut ByteReader<'_>) -> Result<CostParams, PersistError> {
    Ok(CostParams {
        seq_page_cost: r.get_f64()?,
        random_page_cost: r.get_f64()?,
        cpu_tuple_cost: r.get_f64()?,
        cpu_index_tuple_cost: r.get_f64()?,
        cpu_operator_cost: r.get_f64()?,
        effective_cache_pages: r.get_u64()?,
        work_mem_bytes: r.get_u64()?,
        index_only_heap_fetch_frac: r.get_f64()?,
    })
}

fn put_cand_costs(w: &mut ByteWriter, cc: &CandCosts) {
    w.put_u64(cc.id as u64);
    w.put_f64(cc.unordered);
    w.put_len(cc.ordered.len());
    for &c in &cc.ordered {
        w.put_f64(c);
    }
    w.put_len(cc.paths.len());
    for p in &cc.paths {
        let prof = &p.profile;
        w.put_bool(prof.bitmap);
        w.put_u64(prof.matched as u64);
        w.put_bool(prof.index_only);
        w.put_bool(prof.parameterized);
        w.put_len(prof.order.len());
        for qc in &prof.order {
            put_query_column(w, qc);
        }
        let (pre, post, heap_rows, corr2, row_count) = prof.persist_parts();
        w.put_f64(pre);
        w.put_f64(post);
        w.put_f64(heap_rows);
        w.put_f64(corr2);
        w.put_f64(row_count);
        w.put_u64(p.order_ok);
    }
}

fn get_cand_costs(r: &mut ByteReader<'_>) -> Result<CandCosts, PersistError> {
    let id = r.get_u64()? as usize;
    let unordered = r.get_f64()?;
    let n = r.get_len()?;
    let mut ordered = Vec::with_capacity(n);
    for _ in 0..n {
        ordered.push(r.get_f64()?);
    }
    let n = r.get_len()?;
    let mut paths = Vec::with_capacity(n);
    for _ in 0..n {
        let bitmap = r.get_bool()?;
        let matched = r.get_u64()? as usize;
        let index_only = r.get_bool()?;
        let parameterized = r.get_bool()?;
        let no = r.get_len()?;
        let mut order = Vec::with_capacity(no);
        for _ in 0..no {
            order.push(get_query_column(r)?);
        }
        let parts = (
            r.get_f64()?,
            r.get_f64()?,
            r.get_f64()?,
            r.get_f64()?,
            r.get_f64()?,
        );
        let profile = IndexPathProfile::from_persist_parts(
            bitmap,
            matched,
            index_only,
            parameterized,
            order,
            parts,
        );
        let order_ok = r.get_u64()?;
        paths.push(CandPath { profile, order_ok });
    }
    Ok(CandCosts {
        id,
        unordered,
        ordered,
        paths,
    })
}

fn put_slot_costs(w: &mut ByteWriter, s: &SlotCosts) {
    w.put_u32(s.table.0);
    w.put_u128(s.needed_mask);
    w.put_f64(s.base_rows);
    w.put_u64(s.n_filters as u64);
    w.put_f64(s.base_target.pages);
    w.put_u64(s.base_target.fragments as u64);
    w.put_f64(s.base_unordered);
    w.put_len(s.base_ordered.len());
    for &c in &s.base_ordered {
        w.put_f64(c);
    }
    w.put_len(s.slot_orders.len());
    for o in &s.slot_orders {
        w.put_len(o.len());
        for &c in o {
            w.put_u16(c);
        }
    }
    w.put_len(s.cands.len());
    for cc in &s.cands {
        put_cand_costs(w, cc);
    }
}

fn get_slot_costs(r: &mut ByteReader<'_>) -> Result<SlotCosts, PersistError> {
    let table = TableId(r.get_u32()?);
    let needed_mask = r.get_u128()?;
    let base_rows = r.get_f64()?;
    let n_filters = r.get_u64()? as usize;
    let base_target = FetchTarget {
        pages: r.get_f64()?,
        fragments: r.get_u64()? as usize,
    };
    let base_unordered = r.get_f64()?;
    let n = r.get_len()?;
    let mut base_ordered = Vec::with_capacity(n);
    for _ in 0..n {
        base_ordered.push(r.get_f64()?);
    }
    let n = r.get_len()?;
    let mut slot_orders = Vec::with_capacity(n);
    for _ in 0..n {
        let no = r.get_len()?;
        let mut o = Vec::with_capacity(no);
        for _ in 0..no {
            o.push(r.get_u16()?);
        }
        slot_orders.push(o);
    }
    let n = r.get_len()?;
    let mut cands = Vec::with_capacity(n);
    for _ in 0..n {
        cands.push(get_cand_costs(r)?);
    }
    Ok(SlotCosts {
        table,
        needed_mask,
        base_rows,
        n_filters,
        base_target,
        base_unordered,
        base_ordered,
        slot_orders,
        cands,
    })
}

fn put_query_matrix(w: &mut ByteWriter, qm: &QueryMatrix) {
    w.put_f64(qm.weight);
    w.put_u64(qm.key);
    w.put_bool(qm.active);
    w.put_len(qm.internal.len());
    for &c in &qm.internal {
        w.put_f64(c);
    }
    w.put_len(qm.reqs.len());
    for req in &qm.reqs {
        w.put_len(req.len());
        for &o in req {
            w.put_u32(o);
        }
    }
    w.put_len(qm.slots.len());
    for s in &qm.slots {
        put_slot_costs(w, s);
    }
}

fn get_query_matrix(r: &mut ByteReader<'_>) -> Result<QueryMatrix, PersistError> {
    let weight = r.get_f64()?;
    let key = r.get_u64()?;
    let active = r.get_bool()?;
    let n = r.get_len()?;
    let mut internal = Vec::with_capacity(n);
    for _ in 0..n {
        internal.push(r.get_f64()?);
    }
    let n = r.get_len()?;
    let mut reqs = Vec::with_capacity(n);
    for _ in 0..n {
        let ns = r.get_len()?;
        let mut req = Vec::with_capacity(ns);
        for _ in 0..ns {
            req.push(r.get_u32()?);
        }
        reqs.push(req);
    }
    let n = r.get_len()?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        slots.push(get_slot_costs(r)?);
    }
    Ok(QueryMatrix {
        weight,
        key,
        active,
        internal,
        reqs,
        slots,
    })
}

// ---------------------------------------------------------------------------
// Snapshot encode / decode
// ---------------------------------------------------------------------------

/// Encode a published snapshot as the record payloads of a `.pgds` file:
/// record 0 is the header (published generation, catalog fingerprints),
/// record 1 the candidate registry, then one record per query slot (so the
/// per-record CRC localizes damage), then fragments, then splits.
pub fn encode_snapshot(snap: &MatrixSnapshot, catalog: &Catalog) -> Vec<Vec<u8>> {
    encode_core(snap.core(), snap.generation(), catalog)
}

/// [`encode_snapshot`] of the matrix's latest published generation.
pub fn encode_published(matrix: &CostMatrix<'_>) -> Vec<Vec<u8>> {
    let snap = matrix.slot.current();
    encode_core(snap.core(), snap.generation(), matrix.inum.catalog())
}

fn encode_core(core: &MatrixCore, generation: u64, catalog: &Catalog) -> Vec<Vec<u8>> {
    let fingerprints = catalog_fingerprints(catalog);
    let mut records = Vec::with_capacity(4 + core.queries.len());

    let mut header = ByteWriter::new();
    header.put_u64(generation);
    header.put_len(fingerprints.len());
    for &fp in &fingerprints {
        header.put_u64(fp);
    }
    records.push(header.into_bytes());

    let mut reg = ByteWriter::new();
    put_params(&mut reg, &core.params);
    reg.put_u64(core.generation);
    reg.put_len(core.indexes.len());
    for idx in &core.indexes {
        match idx {
            None => reg.put_u8(0),
            Some(i) => {
                reg.put_u8(1);
                put_index(&mut reg, i);
            }
        }
    }
    reg.put_len(core.free_candidates.len());
    for &id in &core.free_candidates {
        reg.put_u64(id as u64);
    }
    reg.put_len(core.free_queries.len());
    for &id in &core.free_queries {
        reg.put_u64(id as u64);
    }
    reg.put_u64(core.queries.len() as u64);
    records.push(reg.into_bytes());

    for (qm, entry) in core.queries.iter().zip(&core.workload.entries) {
        let mut w = ByteWriter::new();
        put_query(&mut w, &entry.query);
        put_query_matrix(&mut w, qm);
        records.push(w.into_bytes());
    }

    let mut frags = ByteWriter::new();
    frags.put_len(core.fragments.len());
    for f in &core.fragments {
        frags.put_u32(f.table.0);
        frags.put_len(f.columns.len());
        for &c in &f.columns {
            frags.put_u16(c);
        }
        frags.put_u64(f.pages);
    }
    records.push(frags.into_bytes());

    let mut splits = ByteWriter::new();
    splits.put_len(core.splits.len());
    for sp in &core.splits {
        splits.put_u32(sp.hp.table.0);
        splits.put_u16(sp.hp.column);
        splits.put_len(sp.hp.bounds.len());
        for &b in &sp.hp.bounds {
            splits.put_f64(b);
        }
        splits.put_len(sp.frac.len());
        for row in &sp.frac {
            splits.put_len(row.len());
            for &f in row {
                splits.put_f64(f);
            }
        }
    }
    records.push(splits.into_bytes());

    records
}

/// A decoded snapshot payload, not yet bound to an [`Inum`]. Catalog
/// staleness is resolved by [`restore_matrix`].
pub struct DecodedSnapshot {
    core: MatrixCore,
    /// Published generation recorded at write time.
    pub generation: u64,
    /// Cells carried by the payload (base + candidate cells of active
    /// queries) — the "snapshot cells loaded" recovery counter.
    pub cells: u64,
    stored_fingerprints: Vec<u64>,
}

/// Decode the record payloads of a verified `.pgds` file. The framing
/// layer has already checked every record's CRC; this validates the
/// semantic invariants (tags, cross-record counts, cell keys).
pub fn decode_snapshot(records: &[Vec<u8>]) -> Result<DecodedSnapshot, PersistError> {
    if records.len() < 4 {
        return Err(invalid("too few records"));
    }
    // Positional record access that survives a lying record count.
    let rec = |i: usize| -> Result<&[u8], PersistError> {
        records
            .get(i)
            .map(Vec::as_slice)
            .ok_or_else(|| invalid("missing record"))
    };
    let mut r = ByteReader::new(rec(0)?);
    let generation = r.get_u64()?;
    let n_tables = r.get_len()?;
    let mut stored_fingerprints = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        stored_fingerprints.push(r.get_u64()?);
    }
    r.expect_end("header record")?;

    let mut r = ByteReader::new(rec(1)?);
    let params = get_params(&mut r)?;
    let rotation_generation = r.get_u64()?;
    let n = r.get_len()?;
    let mut indexes: Vec<Option<Index>> = Vec::with_capacity(n);
    for _ in 0..n {
        indexes.push(match r.get_u8()? {
            0 => None,
            1 => Some(get_index(&mut r)?),
            _ => return Err(invalid("candidate tag")),
        });
    }
    let n_candidates = indexes.len();
    let n = r.get_len()?;
    let mut free_candidates = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.get_u64()? as usize;
        if id >= n_candidates {
            return Err(invalid("free candidate id out of range"));
        }
        free_candidates.push(id);
    }
    let n = r.get_len()?;
    let mut free_queries = Vec::with_capacity(n);
    for _ in 0..n {
        free_queries.push(r.get_u64()? as usize);
    }
    let n_queries = r.get_u64()? as usize;
    r.expect_end("registry record")?;
    if free_queries.iter().any(|&id| id >= n_queries) {
        return Err(invalid("free query id out of range"));
    }

    if records.len() != 4 + n_queries {
        return Err(invalid("record count does not match query count"));
    }

    let mut workload = Workload::new();
    let mut queries = Vec::with_capacity(n_queries);
    let mut cells = 0u64;
    let query_records = records
        .get(2..2 + n_queries)
        .ok_or_else(|| invalid("missing query records"))?;
    for payload in query_records {
        let mut r = ByteReader::new(payload);
        let query = get_query(&mut r)?;
        let qm = get_query_matrix(&mut r)?;
        r.expect_end("query record")?;
        // Slot table ids index per-table state during restore
        // (staleness masks, fragment lists); an id past the stored
        // table count is structural corruption, caught here rather
        // than as a panic later.
        if qm.slots.iter().any(|s| s.table.0 as usize >= n_tables) {
            return Err(invalid("query slot table out of range"));
        }
        if qm.active {
            // Cells are keyed by the public FNV-1a cell key: a stored key
            // that does not match its own query is not the matrix it
            // claims to be.
            if qm.key != query_key(&query) {
                return Err(invalid("cell key does not match its query"));
            }
            cells += qm
                .slots
                .iter()
                .map(|s| 1 + s.cands.len() as u64)
                .sum::<u64>();
        }
        workload.push(query, qm.weight);
        queries.push(Arc::new(qm));
    }

    let mut r = ByteReader::new(rec(2 + n_queries)?);
    let n = r.get_len()?;
    let mut fragments = Vec::with_capacity(n);
    let mut frags_by_table: Vec<Vec<usize>> = vec![Vec::new(); n_tables];
    for fid in 0..n {
        let table = TableId(r.get_u32()?);
        let nc = r.get_len()?;
        let mut columns = Vec::with_capacity(nc);
        for _ in 0..nc {
            let c = r.get_u16()?;
            if c >= 128 {
                return Err(invalid("fragment column ordinal out of range"));
            }
            columns.push(c);
        }
        let pages = r.get_u64()?;
        let mask = column_mask(&columns);
        frags_by_table
            .get_mut(table.0 as usize)
            .ok_or_else(|| invalid("fragment table out of range"))?
            .push(fid);
        fragments.push(Arc::new(Fragment {
            table,
            columns,
            mask,
            pages,
        }));
    }
    r.expect_end("fragment record")?;

    let mut r = ByteReader::new(rec(3 + n_queries)?);
    let n = r.get_len()?;
    let mut splits = Vec::with_capacity(n);
    for _ in 0..n {
        let table = TableId(r.get_u32()?);
        let column = r.get_u16()?;
        let nb = r.get_len()?;
        let mut bounds = Vec::with_capacity(nb);
        for _ in 0..nb {
            bounds.push(r.get_f64()?);
        }
        let nf = r.get_len()?;
        if nf != n_queries {
            return Err(invalid("split fraction table misaligned with queries"));
        }
        let mut frac = Vec::with_capacity(nf);
        for _ in 0..nf {
            let ns = r.get_len()?;
            let mut row = Vec::with_capacity(ns);
            for _ in 0..ns {
                row.push(r.get_f64()?);
            }
            frac.push(row);
        }
        splits.push(Arc::new(Split {
            hp: HorizontalPartitioning {
                table,
                column,
                bounds,
            },
            frac,
        }));
    }
    r.expect_end("split record")?;

    // Redundant state is rebuilt, never trusted: the live id per index is
    // the lowest live id (first registration wins, exactly as the builder
    // and `remove_candidate` maintain it).
    let mut id_by_index = HashMap::with_capacity(indexes.len());
    for (id, idx) in indexes.iter().enumerate() {
        if let Some(i) = idx {
            id_by_index.entry(i.clone()).or_insert(id);
        }
    }

    Ok(DecodedSnapshot {
        core: MatrixCore {
            params,
            workload,
            indexes,
            id_by_index,
            queries,
            free_candidates,
            free_queries,
            generation: rotation_generation,
            fragments,
            splits,
            frags_by_table,
        },
        generation,
        cells,
        stored_fingerprints,
    })
}

// ---------------------------------------------------------------------------
// Restore (staleness-aware)
// ---------------------------------------------------------------------------

/// What a warm restore did, for the recovery counters.
#[derive(Debug, Clone, Default)]
pub struct RestoreReport {
    /// Cells adopted from the snapshot payload.
    pub cells_loaded: u64,
    /// Cells recomputed because their table's statistics fingerprint
    /// changed since the snapshot was written.
    pub cells_invalidated: u64,
    /// The tables whose statistics changed.
    pub stale_tables: Vec<TableId>,
}

/// Bind a decoded snapshot to a live [`Inum`], reconciling catalog
/// staleness: tables whose statistics fingerprint changed have their
/// skeleton-cache entries invalidated ([`Inum::invalidate_table`]) and the
/// cells of queries touching them recomputed against current statistics.
/// Everything else is adopted as-is — no matrix build is paid
/// (`MatrixStats::builds` stays untouched; recomputed cells are counted as
/// incremental work).
pub fn restore_matrix<'a>(
    inum: &'a Inum<'a>,
    decoded: DecodedSnapshot,
) -> Result<(CostMatrix<'a>, RestoreReport), PersistError> {
    let t0 = Instant::now();
    let catalog = inum.catalog();
    let now = catalog_fingerprints(catalog);
    if now.len() != decoded.stored_fingerprints.len() {
        return Err(invalid("catalog table count changed"));
    }
    let stale_tables: Vec<TableId> = now
        .iter()
        .zip(&decoded.stored_fingerprints)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(t, _)| TableId(t as u32))
        .collect();

    let mut core = decoded.core;
    let mut invalidated = 0u64;
    if !stale_tables.is_empty() {
        let stale: Vec<bool> = (0..now.len())
            .map(|t| stale_tables.contains(&TableId(t as u32)))
            .collect();
        for &t in &stale_tables {
            inum.invalidate_table(t);
        }
        // Decode has validated every slot/fragment table id against the
        // stored table count, so an out-of-range lookup here cannot
        // happen — `.get()` keeps that a local fact instead of a panic.
        let is_stale = |t: TableId| stale.get(t.0 as usize).copied().unwrap_or(false);
        let indexes = &core.indexes;
        for (slot, entry) in core.queries.iter_mut().zip(&core.workload.entries) {
            if !slot.active || !slot.slots.iter().any(|s| is_stale(s.table)) {
                continue;
            }
            let (qm, cells) = compute_query_matrix(inum, &entry.query, slot.weight, indexes);
            invalidated += cells;
            *slot = Arc::new(qm);
        }
        for frag in core.fragments.iter_mut() {
            let table = frag.table;
            if !is_stale(table) {
                continue;
            }
            let tdef = catalog.schema.table(table);
            if frag.columns.iter().any(|&c| c >= tdef.width()) {
                return Err(invalid("fragment column ordinal out of catalog range"));
            }
            // analyzer:allow(panic-freedom): frag.columns validated against
            // tdef.width() on the line above; byte_width_of cannot index
            // out of range here.
            let pages = sizing::heap_pages(
                catalog.row_count(table),
                tdef.byte_width_of(&frag.columns) + 8,
            );
            Arc::make_mut(frag).pages = pages;
        }
        // Split surviving fractions depend only on the partitioning bounds
        // and the query predicates, not on statistics — nothing to redo.
        inum.note_matrix_incremental(invalidated, 0, t0.elapsed().as_nanos() as u64);
    }

    let report = RestoreReport {
        cells_loaded: decoded.cells,
        cells_invalidated: invalidated,
        stale_tables,
    };
    Ok((
        CostMatrix::from_core(inum, core, decoded.generation),
        report,
    ))
}

// ---------------------------------------------------------------------------
// Edit codec
// ---------------------------------------------------------------------------

/// Encode one edit as a log-record payload.
pub fn encode_edit(edit: &MatrixEdit) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match edit {
        MatrixEdit::AddCandidates(indexes) => {
            w.put_u8(0);
            w.put_len(indexes.len());
            for idx in indexes {
                put_index(&mut w, idx);
            }
        }
        MatrixEdit::RemoveCandidate(id) => {
            w.put_u8(1);
            w.put_u64(*id as u64);
        }
        MatrixEdit::AddQueries(entries) => {
            w.put_u8(2);
            w.put_len(entries.len());
            for (q, weight) in entries {
                put_query(&mut w, q);
                w.put_f64(*weight);
            }
        }
        MatrixEdit::RetireQuery(id) => {
            w.put_u8(3);
            w.put_u64(*id as u64);
        }
        MatrixEdit::SetQueryWeight(id, weight) => {
            w.put_u8(4);
            w.put_u64(*id as u64);
            w.put_f64(*weight);
        }
        MatrixEdit::RegisterFragment(table, columns) => {
            w.put_u8(5);
            w.put_u32(table.0);
            w.put_len(columns.len());
            for &c in columns {
                w.put_u16(c);
            }
        }
        MatrixEdit::RegisterSplit(hp) => {
            w.put_u8(6);
            w.put_u32(hp.table.0);
            w.put_u16(hp.column);
            w.put_len(hp.bounds.len());
            for &b in &hp.bounds {
                w.put_f64(b);
            }
        }
        MatrixEdit::Publish => w.put_u8(7),
    }
    w.into_bytes()
}

/// Decode one log-record payload.
pub fn decode_edit(bytes: &[u8]) -> Result<MatrixEdit, PersistError> {
    let mut r = ByteReader::new(bytes);
    let edit = match r.get_u8()? {
        0 => {
            let n = r.get_len()?;
            let mut indexes = Vec::with_capacity(n);
            for _ in 0..n {
                indexes.push(get_index(&mut r)?);
            }
            MatrixEdit::AddCandidates(indexes)
        }
        1 => MatrixEdit::RemoveCandidate(r.get_u64()? as usize),
        2 => {
            let n = r.get_len()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let q = get_query(&mut r)?;
                let weight = r.get_f64()?;
                entries.push((q, weight));
            }
            MatrixEdit::AddQueries(entries)
        }
        3 => MatrixEdit::RetireQuery(r.get_u64()? as usize),
        4 => {
            let id = r.get_u64()? as usize;
            let weight = r.get_f64()?;
            MatrixEdit::SetQueryWeight(id, weight)
        }
        5 => {
            let table = TableId(r.get_u32()?);
            let n = r.get_len()?;
            let mut columns = Vec::with_capacity(n);
            for _ in 0..n {
                columns.push(r.get_u16()?);
            }
            MatrixEdit::RegisterFragment(table, columns)
        }
        6 => {
            let table = TableId(r.get_u32()?);
            let column = r.get_u16()?;
            let n = r.get_len()?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(r.get_f64()?);
            }
            MatrixEdit::RegisterSplit(HorizontalPartitioning {
                table,
                column,
                bounds,
            })
        }
        7 => MatrixEdit::Publish,
        _ => return Err(invalid("edit tag")),
    };
    r.expect_end("edit record")?;
    Ok(edit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;

    fn assert_same_costs(live: &CostMatrix<'_>, restored: &CostMatrix<'_>) {
        assert_eq!(live.n_queries(), restored.n_queries());
        assert_eq!(live.n_candidates(), restored.n_candidates());
        let n = live.n_candidates();
        for qi in 0..live.n_queries() {
            assert_eq!(live.query_active(qi), restored.query_active(qi), "Q{qi}");
            if !live.query_active(qi) {
                continue;
            }
            let empty = live.empty_config();
            assert_eq!(
                live.cost(qi, &empty),
                restored.cost(qi, &empty),
                "Q{qi} empty"
            );
            for a in 0..n.min(8) {
                if live.candidate(a).is_none() {
                    continue;
                }
                let solo = live.config_of([a]);
                assert_eq!(
                    live.cost(qi, &solo),
                    restored.cost(qi, &solo),
                    "Q{qi} solo {a}"
                );
            }
            let mut joint = live.empty_joint();
            for f in 0..live.n_fragments() {
                joint.fragments.insert(f);
            }
            for s in 0..live.n_splits() {
                joint.splits.insert(s);
            }
            assert_eq!(
                live.joint_cost(qi, &joint),
                restored.joint_cost(qi, &joint),
                "Q{qi} joint"
            );
        }
        let full: Vec<usize> = (0..n).filter(|&a| live.candidate(a).is_some()).collect();
        let cfg = live.config_of(full);
        assert_eq!(live.workload_cost(&cfg), restored.workload_cost(&cfg));
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live = CostMatrix::build(&inum, &w, &cands.indexes);
        live.register_fragment(TableId(0), &[0, 1]);
        live.register_split(HorizontalPartitioning {
            table: TableId(0),
            column: 0,
            bounds: vec![0.25, 0.5],
        });
        live.publish();

        let records = encode_published(&live);
        let decoded = decode_snapshot(&records).expect("decode");
        assert_eq!(decoded.generation, 1);
        assert!(decoded.cells > 0);
        let opt2 = Optimizer::new();
        let inum2 = Inum::new(&c, &opt2);
        let (restored, report) = restore_matrix(&inum2, decoded).expect("restore");
        assert_eq!(report.cells_invalidated, 0, "no stale tables");
        assert!(report.stale_tables.is_empty());
        assert!(report.cells_loaded > 0);
        assert_eq!(
            inum2.matrix_stats().builds,
            0,
            "restore must not count a build"
        );
        assert_same_costs(&live, &restored);
    }

    #[test]
    fn journal_replay_reproduces_live_matrix() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 6, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live = CostMatrix::build(&inum, &w, &cands.indexes);
        live.publish();
        let records = encode_published(&live);

        let opt2 = Optimizer::new();
        let inum2 = Inum::new(&c, &opt2);
        let decoded = decode_snapshot(&records).expect("decode");
        let (mut restored, _) = restore_matrix(&inum2, decoded).expect("restore");

        // Mutate the live matrix with the journal on, then replay the journal
        // into the restored copy and require bit-identical agreement.
        live.enable_journal();
        let extra = sdss_workload(&c, 3, 202);
        live.add_queries(extra.iter().map(|(q, _)| (q, 2.0)));
        live.retire_query(1);
        live.set_query_weight(0, 3.5);
        let new_index = Index {
            table: TableId(1),
            columns: vec![2, 0],
            unique: false,
        };
        live.add_candidate(&new_index);
        live.remove_candidate(0);
        live.register_fragment(TableId(2), &[0]);
        live.register_split(HorizontalPartitioning {
            table: TableId(1),
            column: 1,
            bounds: vec![0.5],
        });
        live.publish();

        let journal = live.take_journal();
        assert!(!journal.is_empty());
        for edit in &journal {
            let bytes = encode_edit(edit);
            let back = decode_edit(&bytes).expect("edit roundtrip");
            assert_eq!(&back, edit);
            restored.apply_edit(&back);
        }
        assert_eq!(live.published_generation(), restored.published_generation());
        assert_same_costs(&live, &restored);
    }

    #[test]
    fn stale_table_invalidates_only_its_cells() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 9, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live = CostMatrix::build(&inum, &w, &cands.indexes);
        live.register_fragment(TableId(0), &[0, 1]);
        live.publish();
        let records = encode_published(&live);

        // Same schema, drifted statistics on table 0 only.
        let mut c2 = sdss_catalog(0.01);
        c2.stats[0].row_count *= 2;
        let opt2 = Optimizer::new();
        let inum2 = Inum::new(&c2, &opt2);
        let decoded = decode_snapshot(&records).expect("decode");
        let (restored, report) = restore_matrix(&inum2, decoded).expect("restore");
        assert_eq!(report.stale_tables, vec![TableId(0)]);
        assert!(report.cells_invalidated > 0);

        // A cold build against the drifted catalog is the ground truth.
        let opt3 = Optimizer::new();
        let inum3 = Inum::new(&c2, &opt3);
        let mut cold = CostMatrix::build(&inum3, &w, &cands.indexes);
        cold.register_fragment(TableId(0), &[0, 1]);
        cold.publish();
        assert_same_costs(&cold, &restored);
    }

    #[test]
    fn decode_rejects_mismatched_cell_key() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 3, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live = CostMatrix::build(&inum, &w, &cands.indexes);
        live.publish();
        let mut records = encode_published(&live);
        // Swap two query records: each record's CRC would still pass, but
        // the stored cell keys no longer match their own queries... they do,
        // since key travels with its query. Instead corrupt a key in place:
        // re-encode record 2 with a flipped key bit.
        let mut r = ByteReader::new(&records[2]);
        let q = get_query(&mut r).unwrap();
        let mut qm = get_query_matrix(&mut r).unwrap();
        qm.key ^= 1;
        let mut wtr = ByteWriter::new();
        put_query(&mut wtr, &q);
        put_query_matrix(&mut wtr, &qm);
        records[2] = wtr.into_bytes();
        assert!(matches!(
            decode_snapshot(&records),
            Err(PersistError::Invalid(_))
        ));
    }

    /// Decode record 1 into its parts and re-encode it with the free lists
    /// replaced — the tamper harness for the registry-record validations.
    fn reencode_registry(
        bytes: &[u8],
        free_candidates: &[usize],
        free_queries: &[usize],
    ) -> Vec<u8> {
        let mut r = ByteReader::new(bytes);
        let params = get_params(&mut r).unwrap();
        let generation = r.get_u64().unwrap();
        let n = r.get_len().unwrap();
        let mut indexes: Vec<Option<Index>> = Vec::with_capacity(n);
        for _ in 0..n {
            indexes.push(match r.get_u8().unwrap() {
                0 => None,
                _ => Some(get_index(&mut r).unwrap()),
            });
        }
        for _ in 0..r.get_len().unwrap() {
            r.get_u64().unwrap(); // original free candidate ids
        }
        for _ in 0..r.get_len().unwrap() {
            r.get_u64().unwrap(); // original free query ids
        }
        let n_queries = r.get_u64().unwrap();

        let mut w = ByteWriter::new();
        put_params(&mut w, &params);
        w.put_u64(generation);
        w.put_len(indexes.len());
        for idx in &indexes {
            match idx {
                None => w.put_u8(0),
                Some(i) => {
                    w.put_u8(1);
                    put_index(&mut w, i);
                }
            }
        }
        w.put_len(free_candidates.len());
        for &id in free_candidates {
            w.put_u64(id as u64);
        }
        w.put_len(free_queries.len());
        for &id in free_queries {
            w.put_u64(id as u64);
        }
        w.put_u64(n_queries);
        w.into_bytes()
    }

    fn published_records() -> Vec<Vec<u8>> {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 3, 101);
        let cands = workload_candidates(&c, &w, &CandidateConfig::default());
        let mut live = CostMatrix::build(&inum, &w, &cands.indexes);
        live.publish();
        encode_published(&live)
    }

    #[test]
    fn decode_rejects_out_of_range_slot_table() {
        let mut records = published_records();
        // CRC-valid framing, semantically impossible payload: a slot that
        // claims a table past the stored table count. Before decode-time
        // validation this panicked inside `restore_matrix`'s per-table
        // lookups; now it must be a structured error.
        let mut r = ByteReader::new(&records[2]);
        let q = get_query(&mut r).unwrap();
        let mut qm = get_query_matrix(&mut r).unwrap();
        qm.slots[0].table = TableId(u32::MAX);
        let mut wtr = ByteWriter::new();
        put_query(&mut wtr, &q);
        put_query_matrix(&mut wtr, &qm);
        records[2] = wtr.into_bytes();
        assert!(matches!(
            decode_snapshot(&records),
            Err(PersistError::Invalid("query slot table out of range"))
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_free_candidate() {
        let mut records = published_records();
        records[1] = reencode_registry(&records[1], &[usize::MAX], &[]);
        assert!(matches!(
            decode_snapshot(&records),
            Err(PersistError::Invalid("free candidate id out of range"))
        ));
    }

    #[test]
    fn decode_rejects_out_of_range_free_query() {
        let mut records = published_records();
        // Free query ids are validated against the stored query count; an
        // id at the count (one past the last slot) must already fail.
        records[1] = reencode_registry(&records[1], &[], &[3]);
        assert!(matches!(
            decode_snapshot(&records),
            Err(PersistError::Invalid("free query id out of range"))
        ));
    }

    #[test]
    fn restore_refuses_catalog_shape_change() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = sdss_workload(&c, 3, 101);
        let mut live = CostMatrix::build(&inum, &w, &[]);
        live.publish();
        let records = encode_published(&live);
        let mut decoded = decode_snapshot(&records).expect("decode");
        decoded.stored_fingerprints.pop();
        let opt2 = Optimizer::new();
        let inum2 = Inum::new(&c, &opt2);
        assert!(matches!(
            restore_matrix(&inum2, decoded),
            Err(PersistError::Invalid(_))
        ));
    }
}
