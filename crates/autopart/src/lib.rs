//! # pgdesign-autopart
//!
//! AutoPart — automated schema partitioning for large scientific databases
//! (Papadomanolakis & Ailamaki, SSDBM 2004), the paper's automatic
//! partition suggestion component (§3.3).
//!
//! AutoPart partitions each table *vertically* into column groups driven by
//! the workload's access sets, optionally *replicating* hot columns into
//! multiple fragments under a replication budget, and *horizontally* by
//! range on the most-restricted column. The search is the original greedy
//! scheme:
//!
//! 1. **Atomic fragments** — group columns that are accessed by exactly the
//!    same set of queries (the partition induced by the workload's access
//!    sets);
//! 2. **Composite fragments** — repeatedly merge (or replicate into) the
//!    pair of fragments whose combination most reduces estimated workload
//!    cost, as judged by the what-if cost model, until no merge helps;
//! 3. **Horizontal pass** — propose range partitioning on the column with
//!    the most sargable restrictions and keep it if it pays.
//!
//! Costing goes through INUM (the paper: "we have also extended the INUM
//! cost model to include partitions") — specifically through the
//! *partition-aware cost matrix* ([`CostMatrix`]): atomic fragments are
//! registered as fragment candidates once, every merge/replication trial
//! of the greedy loop is a [`JointToggle`] delta evaluation, and the
//! horizontal pass is a [`CostMatrix::delta_split`]. The search therefore
//! issues **zero** per-trial [`Inum::cost`] calls and never constructs a
//! `PhysicalDesign` inside the loop (the suite asserts both).

#![forbid(unsafe_code)]

use pgdesign_catalog::design::{HorizontalPartitioning, PhysicalDesign, VerticalPartitioning};
use pgdesign_catalog::schema::TableId;
use pgdesign_inum::{CostMatrix, Inum, JointConfig, JointToggle};
use pgdesign_query::ast::PredOp;
use pgdesign_query::Workload;
use std::collections::BTreeMap;

/// AutoPart knobs.
#[derive(Debug, Clone, Copy)]
pub struct AutoPartConfig {
    /// Extra bytes allowed for column replication across fragments — one
    /// shared pool for the whole search, drawn down by every table's
    /// accepted replication (not a per-table allowance).
    pub replication_budget_bytes: u64,
    /// Maximum greedy merge iterations per table. `0` disables the
    /// vertical search entirely (a valid no-op recommendation).
    pub max_iterations: usize,
    /// Number of horizontal partitions to propose. Values below 2 cannot
    /// describe a split, so they disable the horizontal pass (no-op)
    /// rather than being silently rounded up.
    pub horizontal_partitions: usize,
    /// Whether to attempt horizontal partitioning at all.
    pub consider_horizontal: bool,
}

impl Default for AutoPartConfig {
    fn default() -> Self {
        AutoPartConfig {
            replication_budget_bytes: 0,
            max_iterations: 64,
            horizontal_partitions: 16,
            consider_horizontal: true,
        }
    }
}

/// A finished partitioning recommendation.
#[derive(Debug, Clone)]
pub struct PartitionRecommendation {
    /// The recommended design (vertical + horizontal partitionings only).
    pub design: PhysicalDesign,
    /// Workload cost under the unpartitioned schema.
    pub base_cost: f64,
    /// Workload cost under the recommendation.
    pub cost: f64,
    /// Per-query `(base, partitioned)` costs.
    pub per_query: Vec<(f64, f64)>,
    /// Greedy merge iterations performed.
    pub iterations: usize,
    /// Bytes of replicated storage the recommendation uses.
    pub replication_bytes: u64,
}

impl PartitionRecommendation {
    /// Average workload benefit as a *signed* fraction of base cost:
    /// negative when the recommendation costs more than the unpartitioned
    /// base. Clamping the value to zero here would silently mask a cost
    /// regression from callers; a degenerate (non-positive) base cost
    /// yields 0.0 since no meaningful fraction exists.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        (self.base_cost - self.cost) / self.base_cost
    }
}

/// The AutoPart advisor.
pub struct AutoPartAdvisor<'a> {
    inum: &'a Inum<'a>,
    config: AutoPartConfig,
}

impl<'a> AutoPartAdvisor<'a> {
    /// New advisor over an INUM instance.
    pub fn new(inum: &'a Inum<'a>, config: AutoPartConfig) -> Self {
        AutoPartAdvisor { inum, config }
    }

    /// Compute atomic fragments for a table: columns grouped by identical
    /// accessing-query sets. Unaccessed columns form one residual group.
    pub fn atomic_fragments(&self, workload: &Workload, table: TableId) -> Vec<Vec<u16>> {
        let catalog = self.inum.catalog();
        let width = catalog.schema.table(table).width();
        // Per-column access signature over (query, slot) pairs.
        let mut signatures: Vec<Vec<bool>> = vec![Vec::new(); width as usize];
        for (q, _) in workload.iter() {
            for slot in 0..q.slot_count() {
                if q.table_of(slot) != table {
                    continue;
                }
                let used = if q.select_star {
                    (0..width).collect()
                } else {
                    q.columns_used(slot)
                };
                for c in 0..width {
                    signatures[c as usize].push(used.contains(&c));
                }
            }
        }
        let mut groups: BTreeMap<Vec<bool>, Vec<u16>> = BTreeMap::new();
        for (c, sig) in signatures.into_iter().enumerate() {
            groups.entry(sig).or_default().push(c as u16);
        }
        groups.into_values().collect()
    }

    /// Run the greedy composite-fragment search for one table, entirely on
    /// matrix deltas: every merge/replication trial is a [`JointToggle`]
    /// evaluation against the current configuration. `cfg` is edited in
    /// place (the table's fragments stay selected only if the final
    /// partitioning beats leaving the table whole). `replication_left` is
    /// the *shared* replication budget: trials are checked against it and
    /// an accepted partitioning's replicated bytes are deducted, so the
    /// tables of one search draw from a single pool rather than each
    /// getting the full budget. Returns the merge steps taken.
    fn partition_table_on(
        &self,
        matrix: &mut CostMatrix<'_>,
        cfg: &mut JointConfig,
        table: TableId,
        workload: &Workload,
        replication_left: &mut u64,
    ) -> usize {
        if self.config.max_iterations == 0 {
            return 0; // degenerate knob: no search, valid no-op
        }
        let catalog = self.inum.catalog();
        let width = catalog.schema.table(table).width();
        let atomic = self.atomic_fragments(workload, table);
        if atomic.len() <= 1 {
            return 0;
        }

        let unpartitioned = matrix.joint_workload_cost(cfg);

        // Select the atomic fragmentation. `groups` mirrors the selected
        // fragment set as column lists (kept duplicate-free; a duplicate
        // group never changes the cost model's answer) for replication
        // budget checks.
        let group_ids: Vec<usize> = atomic
            .iter()
            .map(|g| matrix.register_fragment(table, g))
            .collect();
        let mut group_ids = group_ids;
        for &id in &group_ids {
            cfg.fragments.insert(id);
        }
        let mut groups = atomic;
        let mut current = matrix.joint_workload_cost(cfg);
        let mut iterations = 0usize;

        while iterations < self.config.max_iterations && group_ids.len() > 1 {
            // Candidate merges: all fragment pairs. (The original filters
            // to co-accessed pairs; non-co-accessed merges simply won't
            // improve the cost, so the filter is an optimization only.)
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for i in 0..group_ids.len() {
                for j in (i + 1)..group_ids.len() {
                    let mut merged = groups[i].clone();
                    merged.extend(groups[j].iter().copied());
                    let mid = matrix.register_fragment(table, &merged);
                    let c = matrix.joint_workload_cost_with(
                        cfg,
                        &JointToggle::merge(group_ids[i], group_ids[j], mid),
                    );
                    if c < current - 1e-9 && best.is_none_or(|(_, _, _, bc)| c < bc) {
                        best = Some((i, j, mid, c));
                    }
                }
            }
            // Replication candidates: copy fragment i's columns into
            // fragment j, if the budget allows.
            let mut best_repl: Option<(usize, usize, usize, f64)> = None;
            if *replication_left > 0 {
                for i in 0..group_ids.len() {
                    for j in 0..group_ids.len() {
                        if i == j {
                            continue;
                        }
                        let mut extended = groups[j].clone();
                        extended.extend(groups[i].iter().copied());
                        let mut trial = groups.clone();
                        trial[j] = extended.clone();
                        let vp = VerticalPartitioning::new(table, trial);
                        if vp.replication_bytes(&catalog.schema, catalog.table_stats(table))
                            > *replication_left
                        {
                            continue;
                        }
                        let eid = matrix.register_fragment(table, &extended);
                        let c = matrix.joint_workload_cost_with(
                            cfg,
                            &JointToggle::replace(group_ids[j], eid),
                        );
                        if c < current - 1e-9 && best_repl.is_none_or(|(_, _, _, bc)| c < bc) {
                            best_repl = Some((i, j, eid, c));
                        }
                    }
                }
            }

            let take_merge = match (best, best_repl) {
                (Some((.., mc)), Some((.., rc))) => mc <= rc,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_merge {
                let (i, j, mid, c) = best.expect("checked above");
                cfg.fragments.remove(group_ids[j]);
                cfg.fragments.remove(group_ids[i]);
                groups.remove(j);
                groups.remove(i);
                group_ids.remove(j);
                group_ids.remove(i);
                if !group_ids.contains(&mid) {
                    cfg.fragments.insert(mid);
                    group_ids.push(mid);
                    groups.push(matrix.fragment_columns(mid).to_vec());
                }
                current = c;
            } else {
                let (_, j, eid, c) = best_repl.expect("checked above");
                cfg.fragments.remove(group_ids[j]);
                groups.remove(j);
                group_ids.remove(j);
                if !group_ids.contains(&eid) {
                    cfg.fragments.insert(eid);
                    group_ids.push(eid);
                    groups.push(matrix.fragment_columns(eid).to_vec());
                }
                current = c;
            }
            iterations += 1;
        }

        if current < unpartitioned - 1e-9 {
            let vp = VerticalPartitioning::new(table, groups);
            debug_assert!(vp.is_complete(width));
            // Deduct the accepted partitioning's replicated bytes from the
            // shared pool so later tables cannot overspend it.
            *replication_left = replication_left
                .saturating_sub(vp.replication_bytes(&catalog.schema, catalog.table_stats(table)));
        } else {
            // Not worth it: leave the table whole.
            for &id in &group_ids {
                cfg.fragments.remove(id);
            }
        }
        iterations
    }

    /// Propose a horizontal range partitioning for a table; returns the
    /// registered split-candidate id if it pays under the current
    /// configuration.
    fn horizontal_for_table_on(
        &self,
        matrix: &mut CostMatrix<'_>,
        cfg: &JointConfig,
        table: TableId,
        workload: &Workload,
    ) -> Option<usize> {
        let n = self.config.horizontal_partitions;
        if n < 2 {
            return None; // degenerate knob: <2 partitions is no split
        }
        let catalog = self.inum.catalog();
        // Most-restricted sargable column.
        let mut restriction_count: BTreeMap<u16, usize> = BTreeMap::new();
        for (q, _) in workload.iter() {
            for slot in 0..q.slot_count() {
                if q.table_of(slot) != table {
                    continue;
                }
                for f in q.filters_on(slot) {
                    let counts = matches!(f.op, PredOp::Between(_, _))
                        || matches!(f.op, PredOp::Cmp(op, _) if op != pgdesign_query::ast::CmpOp::Ne);
                    if counts {
                        *restriction_count.entry(f.col.column).or_default() += 1;
                    }
                }
            }
        }
        let (&col, &hits) = restriction_count.iter().max_by_key(|(_, &n)| n)?;
        if hits < 2 {
            return None;
        }
        let stats = catalog.table_stats(table).column(col);
        let bounds: Vec<f64> = match &stats.histogram {
            Some(h) => {
                let b = h.bounds();
                (1..n).map(|i| b[(i * (b.len() - 1)) / n]).collect()
            }
            None => (1..n)
                .map(|i| stats.min + (stats.max - stats.min) * i as f64 / n as f64)
                .collect(),
        };
        let hp = HorizontalPartitioning::new(table, col, bounds);
        if hp.partitions() < 2 {
            return None;
        }
        let sid = matrix.register_split(hp);
        (matrix.delta_split(cfg, sid) < -1e-9).then_some(sid)
    }

    /// Run the full greedy search (vertical merge passes, then the
    /// horizontal pass) on an existing partition-aware matrix, editing
    /// `cfg` in place. This is also the joint-mode entry: with candidate
    /// indexes pre-selected in `cfg.indexes`, every trial sees the index
    /// configuration it must coexist with. Returns the merge iterations
    /// performed.
    pub fn search_on(&self, matrix: &mut CostMatrix<'_>, cfg: &mut JointConfig) -> usize {
        // The matrix owns its queries, so snapshot the *active* ones for
        // the candidate analyses below while the search mutates the matrix
        // (a long-lived session matrix may hold retired slots whose stale
        // queries must not steer the fragmentation).
        let workload = matrix.active_workload();
        let workload = &workload;
        let tables: Vec<TableId> = self.inum.catalog().schema.tables().map(|t| t.id).collect();
        let mut iterations = 0usize;
        // One replication pool for the whole search: every table's accepted
        // replication draws it down.
        let mut replication_left = self.config.replication_budget_bytes;
        for &t in &tables {
            iterations += self.partition_table_on(matrix, cfg, t, workload, &mut replication_left);
        }
        if self.config.consider_horizontal {
            for &t in &tables {
                if let Some(sid) = self.horizontal_for_table_on(matrix, cfg, t, workload) {
                    cfg.splits.insert(sid);
                }
            }
        }
        iterations
    }

    /// Produce the full partitioning recommendation. The search and all
    /// reported costs run on the partition-aware cost matrix; no
    /// [`Inum::cost`] call is issued anywhere in this method. (Builds a
    /// private matrix; see [`Self::recommend_on`] for the session entry.)
    pub fn recommend(&self, workload: &Workload) -> PartitionRecommendation {
        let mut matrix = CostMatrix::build(self.inum, workload, &[]);
        self.recommend_on(&mut matrix)
    }

    /// [`Self::recommend`] against an *existing* matrix — the
    /// session-scoped entry point. The search runs over the matrix's
    /// active queries with no index selected (partitions alone); fragments
    /// and splits it registers stay resident, so later joint costings on
    /// the same session are pure lookups.
    pub fn recommend_on(&self, matrix: &mut CostMatrix<'_>) -> PartitionRecommendation {
        let catalog = self.inum.catalog();
        let empty = matrix.empty_joint();
        let base_cost = matrix.joint_workload_cost(&empty);

        let mut cfg = matrix.empty_joint();
        let iterations = self.search_on(matrix, &mut cfg);

        let mut cost = matrix.joint_workload_cost(&cfg);
        if cost > base_cost {
            // Guard: the greedy accepts only improving steps per table, but
            // never hand back a design costlier than the unpartitioned base.
            cfg = matrix.empty_joint();
            cost = base_cost;
        }
        let design = matrix.joint_design_of(&cfg);
        let per_query = matrix
            .active_query_ids()
            .map(|qi| (matrix.joint_cost(qi, &empty), matrix.joint_cost(qi, &cfg)))
            .collect();
        let replication_bytes = design.replication_bytes(&catalog.schema, &catalog.stats);
        // Session-scoped entry: the fragments/splits this search
        // registered become visible to concurrent snapshot readers.
        matrix.publish();
        PartitionRecommendation {
            design,
            base_cost,
            cost,
            per_query,
            iterations,
            replication_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::parse_query;

    fn narrow_workload(c: &Catalog) -> Workload {
        // Queries touching only a thin column slice of photoobj: vertical
        // partitioning should pay off clearly.
        let sqls = [
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 140",
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 60",
            "SELECT objid, ra FROM photoobj WHERE dec > 40",
            "SELECT ra, dec FROM photoobj WHERE ra < 50",
        ];
        Workload::from_queries(sqls.iter().map(|s| parse_query(&c.schema, s).unwrap()))
    }

    #[test]
    fn atomic_fragments_partition_all_columns() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let frags = advisor.atomic_fragments(&w, photo);
        let mut all: Vec<u16> = frags.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<u16>>());
        // {objid}, {ra}, {dec} are accessed differently → ≥ 3 groups.
        assert!(frags.len() >= 3, "{frags:?}");
    }

    #[test]
    fn narrow_workload_gets_partitioned_with_benefit() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            rec.design.vertical(photo).is_some(),
            "photoobj should split"
        );
        assert!(rec.cost < rec.base_cost);
        assert!(
            rec.average_benefit() > 0.3,
            "thin slice of a wide table: {}",
            rec.average_benefit()
        );
        let vp = rec.design.vertical(photo).unwrap();
        assert!(vp.is_complete(16));
    }

    #[test]
    fn select_star_workload_stays_unpartitioned() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = Workload::from_queries([
            parse_query(&c.schema, "SELECT * FROM photoobj WHERE type = 3").unwrap(),
            parse_query(&c.schema, "SELECT * FROM photoobj WHERE run = 5").unwrap(),
        ]);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // SELECT * touches everything: splitting can only add stitch cost.
        assert!(rec.design.vertical(photo).is_none());
    }

    #[test]
    fn horizontal_partitioning_proposed_for_range_heavy_workload() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // ra is repeatedly range-restricted: horizontal partitioning on ra
        // should survive the benefit test.
        let hp = rec.design.horizontal(photo);
        assert!(hp.is_some());
        assert_eq!(hp.unwrap().column, 1, "partition on ra");
    }

    #[test]
    fn replication_budget_is_respected() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let budget = 4 * 1024 * 1024;
        let advisor = AutoPartAdvisor::new(
            &inum,
            AutoPartConfig {
                replication_budget_bytes: budget,
                ..Default::default()
            },
        );
        // objid is co-accessed with both {ra,dec} and {r}: replicating it
        // may help.
        let w = Workload::from_queries([
            parse_query(
                &c.schema,
                "SELECT objid, ra, dec FROM photoobj WHERE ra < 100",
            )
            .unwrap(),
            parse_query(&c.schema, "SELECT objid, r FROM photoobj WHERE r < 15").unwrap(),
        ]);
        let rec = advisor.recommend(&w);
        assert!(rec.replication_bytes <= budget);
    }

    #[test]
    fn recommendation_never_regresses() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = sdss_workload(&c, 18, 33);
        let rec = advisor.recommend(&w);
        assert!(
            rec.cost <= rec.base_cost + 1e-6,
            "{} vs {}",
            rec.cost,
            rec.base_cost
        );
        for (base, tuned) in &rec.per_query {
            assert!(base.is_finite() && tuned.is_finite());
        }
    }

    #[test]
    fn greedy_search_issues_zero_per_trial_inum_cost_calls() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let calls_before = inum.stats().cost_calls;
        let lookups_before = inum.matrix_stats().partition_lookups;
        let rec = advisor.recommend(&w);
        assert!(
            rec.design.verticals().next().is_some(),
            "search must actually run (and partition something) for this check to mean anything"
        );
        assert_eq!(
            inum.stats().cost_calls,
            calls_before,
            "every trial must be a matrix delta, not an Inum::cost call"
        );
        assert!(
            inum.matrix_stats().partition_lookups > lookups_before,
            "trials must register as partition-aware matrix lookups"
        );
    }

    #[test]
    fn average_benefit_is_signed_and_guards_degenerate_base() {
        let rec = |base: f64, cost: f64| PartitionRecommendation {
            design: PhysicalDesign::empty(),
            base_cost: base,
            cost,
            per_query: vec![],
            iterations: 0,
            replication_bytes: 0,
        };
        assert!((rec(100.0, 80.0).average_benefit() - 0.2).abs() < 1e-12);
        // A regression must show up negative, not be clamped to zero.
        assert!((rec(100.0, 125.0).average_benefit() - (-0.25)).abs() < 1e-12);
        // Non-positive base cost: no meaningful fraction; explicitly 0.
        assert_eq!(rec(0.0, 10.0).average_benefit(), 0.0);
        assert_eq!(rec(-5.0, 10.0).average_benefit(), 0.0);
    }

    #[test]
    fn zero_max_iterations_yields_valid_noop() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(
            &inum,
            AutoPartConfig {
                max_iterations: 0,
                consider_horizontal: false,
                ..Default::default()
            },
        );
        let w = narrow_workload(&c);
        let rec = advisor.recommend(&w);
        assert!(
            rec.design.verticals().next().is_none(),
            "no iterations allowed: no vertical partitioning may be proposed"
        );
        assert_eq!(rec.iterations, 0);
        assert!(
            (rec.cost - rec.base_cost).abs() < 1e-9,
            "no-op recommendation must cost exactly the base: {} vs {}",
            rec.cost,
            rec.base_cost
        );
    }

    #[test]
    fn zero_horizontal_partitions_yields_valid_noop() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let w = narrow_workload(&c);
        for degenerate in [0usize, 1] {
            let advisor = AutoPartAdvisor::new(
                &inum,
                AutoPartConfig {
                    horizontal_partitions: degenerate,
                    ..Default::default()
                },
            );
            let rec = advisor.recommend(&w);
            assert!(
                rec.design.horizontals().next().is_none(),
                "{degenerate} horizontal partitions cannot describe a split"
            );
            // The vertical search is unaffected and still valid.
            let photo = c.schema.table_by_name("photoobj").unwrap().id;
            if let Some(vp) = rec.design.vertical(photo) {
                assert!(vp.is_complete(16));
            }
            assert!(rec.cost <= rec.base_cost + 1e-6);
        }
    }
}
