//! # pgdesign-autopart
//!
//! AutoPart — automated schema partitioning for large scientific databases
//! (Papadomanolakis & Ailamaki, SSDBM 2004), the paper's automatic
//! partition suggestion component (§3.3).
//!
//! AutoPart partitions each table *vertically* into column groups driven by
//! the workload's access sets, optionally *replicating* hot columns into
//! multiple fragments under a replication budget, and *horizontally* by
//! range on the most-restricted column. The search is the original greedy
//! scheme:
//!
//! 1. **Atomic fragments** — group columns that are accessed by exactly the
//!    same set of queries (the partition induced by the workload's access
//!    sets);
//! 2. **Composite fragments** — repeatedly merge (or replicate into) the
//!    pair of fragments whose combination most reduces estimated workload
//!    cost, as judged by the what-if cost model, until no merge helps;
//! 3. **Horizontal pass** — propose range partitioning on the column with
//!    the most sargable restrictions and keep it if it pays.
//!
//! Costing goes through INUM (the paper: "we have also extended the INUM
//! cost model to include partitions").

use pgdesign_catalog::design::{HorizontalPartitioning, PhysicalDesign, VerticalPartitioning};
use pgdesign_catalog::schema::TableId;
use pgdesign_inum::Inum;
use pgdesign_query::ast::PredOp;
use pgdesign_query::Workload;
use std::collections::BTreeMap;

/// AutoPart knobs.
#[derive(Debug, Clone, Copy)]
pub struct AutoPartConfig {
    /// Extra bytes allowed for column replication across fragments.
    pub replication_budget_bytes: u64,
    /// Maximum greedy merge iterations per table.
    pub max_iterations: usize,
    /// Number of horizontal partitions to propose.
    pub horizontal_partitions: usize,
    /// Whether to attempt horizontal partitioning at all.
    pub consider_horizontal: bool,
}

impl Default for AutoPartConfig {
    fn default() -> Self {
        AutoPartConfig {
            replication_budget_bytes: 0,
            max_iterations: 64,
            horizontal_partitions: 16,
            consider_horizontal: true,
        }
    }
}

/// A finished partitioning recommendation.
#[derive(Debug, Clone)]
pub struct PartitionRecommendation {
    /// The recommended design (vertical + horizontal partitionings only).
    pub design: PhysicalDesign,
    /// Workload cost under the unpartitioned schema.
    pub base_cost: f64,
    /// Workload cost under the recommendation.
    pub cost: f64,
    /// Per-query `(base, partitioned)` costs.
    pub per_query: Vec<(f64, f64)>,
    /// Greedy merge iterations performed.
    pub iterations: usize,
    /// Bytes of replicated storage the recommendation uses.
    pub replication_bytes: u64,
}

impl PartitionRecommendation {
    /// Average workload benefit as a fraction of base cost.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        ((self.base_cost - self.cost) / self.base_cost).max(0.0)
    }
}

/// The AutoPart advisor.
pub struct AutoPartAdvisor<'a> {
    inum: &'a Inum<'a>,
    config: AutoPartConfig,
}

impl<'a> AutoPartAdvisor<'a> {
    /// New advisor over an INUM instance.
    pub fn new(inum: &'a Inum<'a>, config: AutoPartConfig) -> Self {
        AutoPartAdvisor { inum, config }
    }

    /// Compute atomic fragments for a table: columns grouped by identical
    /// accessing-query sets. Unaccessed columns form one residual group.
    pub fn atomic_fragments(&self, workload: &Workload, table: TableId) -> Vec<Vec<u16>> {
        let catalog = self.inum.catalog();
        let width = catalog.schema.table(table).width();
        // Per-column access signature over (query, slot) pairs.
        let mut signatures: Vec<Vec<bool>> = vec![Vec::new(); width as usize];
        for (q, _) in workload.iter() {
            for slot in 0..q.slot_count() {
                if q.table_of(slot) != table {
                    continue;
                }
                let used = if q.select_star {
                    (0..width).collect()
                } else {
                    q.columns_used(slot)
                };
                for c in 0..width {
                    signatures[c as usize].push(used.contains(&c));
                }
            }
        }
        let mut groups: BTreeMap<Vec<bool>, Vec<u16>> = BTreeMap::new();
        for (c, sig) in signatures.into_iter().enumerate() {
            groups.entry(sig).or_default().push(c as u16);
        }
        groups.into_values().collect()
    }

    /// Run the greedy composite-fragment search for one table. Returns the
    /// best partitioning found (if it beats no-partitioning) and the number
    /// of merge steps taken.
    fn partition_table(
        &self,
        workload: &Workload,
        table: TableId,
        base_design: &PhysicalDesign,
    ) -> (Option<VerticalPartitioning>, usize) {
        let catalog = self.inum.catalog();
        let width = catalog.schema.table(table).width();
        let atomic = self.atomic_fragments(workload, table);
        if atomic.len() <= 1 {
            return (None, 0);
        }

        let cost_of = |groups: &[Vec<u16>]| -> f64 {
            let mut d = base_design.clone();
            d.set_vertical(VerticalPartitioning::new(table, groups.to_vec()));
            self.inum.workload_cost(&d, workload)
        };
        let unpartitioned = self.inum.workload_cost(base_design, workload);

        let mut groups = atomic;
        let mut current = cost_of(&groups);
        let mut iterations = 0usize;

        while iterations < self.config.max_iterations && groups.len() > 1 {
            // Candidate merges: all fragment pairs. (The original filters
            // to co-accessed pairs; non-co-accessed merges simply won't
            // improve the cost, so the filter is an optimization only.)
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..groups.len() {
                for j in (i + 1)..groups.len() {
                    let mut trial: Vec<Vec<u16>> = Vec::with_capacity(groups.len() - 1);
                    for (k, g) in groups.iter().enumerate() {
                        if k != i && k != j {
                            trial.push(g.clone());
                        }
                    }
                    let mut merged = groups[i].clone();
                    merged.extend(groups[j].iter().copied());
                    trial.push(merged);
                    let c = cost_of(&trial);
                    if c < current - 1e-9 && best.is_none_or(|(_, _, bc)| c < bc) {
                        best = Some((i, j, c));
                    }
                }
            }
            // Replication candidates: copy fragment i's columns into
            // fragment j, if the budget allows.
            let mut best_repl: Option<(usize, usize, f64)> = None;
            if self.config.replication_budget_bytes > 0 {
                for i in 0..groups.len() {
                    for j in 0..groups.len() {
                        if i == j {
                            continue;
                        }
                        let mut trial = groups.clone();
                        let mut extended = trial[j].clone();
                        extended.extend(groups[i].iter().copied());
                        trial[j] = extended;
                        let vp = VerticalPartitioning::new(table, trial.clone());
                        if vp.replication_bytes(&catalog.schema, catalog.table_stats(table))
                            > self.config.replication_budget_bytes
                        {
                            continue;
                        }
                        let c = cost_of(&trial);
                        if c < current - 1e-9 && best_repl.is_none_or(|(_, _, bc)| c < bc) {
                            best_repl = Some((i, j, c));
                        }
                    }
                }
            }

            let take_merge = match (best, best_repl) {
                (Some((_, _, mc)), Some((_, _, rc))) => mc <= rc,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_merge {
                let (i, j, c) = best.expect("checked above");
                let merged = {
                    let mut m = groups[i].clone();
                    m.extend(groups[j].iter().copied());
                    m
                };
                groups.remove(j);
                groups.remove(i);
                groups.push(merged);
                current = c;
            } else {
                let (i, j, c) = best_repl.expect("checked above");
                let mut extended = groups[j].clone();
                extended.extend(groups[i].iter().copied());
                groups[j] = extended;
                current = c;
            }
            iterations += 1;
        }

        if current < unpartitioned - 1e-9 {
            let vp = VerticalPartitioning::new(table, groups);
            debug_assert!(vp.is_complete(width));
            (Some(vp), iterations)
        } else {
            (None, iterations)
        }
    }

    /// Propose a horizontal range partitioning for a table, if beneficial.
    fn horizontal_for_table(
        &self,
        workload: &Workload,
        table: TableId,
        design: &PhysicalDesign,
    ) -> Option<HorizontalPartitioning> {
        let catalog = self.inum.catalog();
        // Most-restricted sargable column.
        let mut restriction_count: BTreeMap<u16, usize> = BTreeMap::new();
        for (q, _) in workload.iter() {
            for slot in 0..q.slot_count() {
                if q.table_of(slot) != table {
                    continue;
                }
                for f in q.filters_on(slot) {
                    let counts = matches!(f.op, PredOp::Between(_, _))
                        || matches!(f.op, PredOp::Cmp(op, _) if op != pgdesign_query::ast::CmpOp::Ne);
                    if counts {
                        *restriction_count.entry(f.col.column).or_default() += 1;
                    }
                }
            }
        }
        let (&col, &hits) = restriction_count.iter().max_by_key(|(_, &n)| n)?;
        if hits < 2 {
            return None;
        }
        let stats = catalog.table_stats(table).column(col);
        let n = self.config.horizontal_partitions.max(2);
        let bounds: Vec<f64> = match &stats.histogram {
            Some(h) => {
                let b = h.bounds();
                (1..n).map(|i| b[(i * (b.len() - 1)) / n]).collect()
            }
            None => (1..n)
                .map(|i| stats.min + (stats.max - stats.min) * i as f64 / n as f64)
                .collect(),
        };
        let hp = HorizontalPartitioning::new(table, col, bounds);
        if hp.partitions() < 2 {
            return None;
        }
        let before = self.inum.workload_cost(design, workload);
        let mut with = design.clone();
        with.set_horizontal(hp.clone());
        let after = self.inum.workload_cost(&with, workload);
        (after < before - 1e-9).then_some(hp)
    }

    /// Produce the full partitioning recommendation.
    pub fn recommend(&self, workload: &Workload) -> PartitionRecommendation {
        let catalog = self.inum.catalog();
        let empty = PhysicalDesign::empty();
        let base_cost = self.inum.workload_cost(&empty, workload);

        let mut design = PhysicalDesign::empty();
        let mut iterations = 0usize;
        let tables: Vec<TableId> = catalog.schema.tables().map(|t| t.id).collect();
        for &t in &tables {
            let (vp, iters) = self.partition_table(workload, t, &design);
            iterations += iters;
            if let Some(vp) = vp {
                design.set_vertical(vp);
            }
        }
        if self.config.consider_horizontal {
            for &t in &tables {
                if let Some(hp) = self.horizontal_for_table(workload, t, &design) {
                    design.set_horizontal(hp);
                }
            }
        }

        let cost = self.inum.workload_cost(&design, workload);
        let per_query = workload
            .iter()
            .map(|(q, _)| (self.inum.cost(&empty, q), self.inum.cost(&design, q)))
            .collect();
        let replication_bytes = design.replication_bytes(&catalog.schema, &catalog.stats);
        PartitionRecommendation {
            design,
            base_cost,
            cost,
            per_query,
            iterations,
            replication_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::Catalog;
    use pgdesign_optimizer::Optimizer;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::parse_query;

    fn narrow_workload(c: &Catalog) -> Workload {
        // Queries touching only a thin column slice of photoobj: vertical
        // partitioning should pay off clearly.
        let sqls = [
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 140",
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 10 AND 60",
            "SELECT objid, ra FROM photoobj WHERE dec > 40",
            "SELECT ra, dec FROM photoobj WHERE ra < 50",
        ];
        Workload::from_queries(sqls.iter().map(|s| parse_query(&c.schema, s).unwrap()))
    }

    #[test]
    fn atomic_fragments_partition_all_columns() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        let frags = advisor.atomic_fragments(&w, photo);
        let mut all: Vec<u16> = frags.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<u16>>());
        // {objid}, {ra}, {dec} are accessed differently → ≥ 3 groups.
        assert!(frags.len() >= 3, "{frags:?}");
    }

    #[test]
    fn narrow_workload_gets_partitioned_with_benefit() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        assert!(
            rec.design.vertical(photo).is_some(),
            "photoobj should split"
        );
        assert!(rec.cost < rec.base_cost);
        assert!(
            rec.average_benefit() > 0.3,
            "thin slice of a wide table: {}",
            rec.average_benefit()
        );
        let vp = rec.design.vertical(photo).unwrap();
        assert!(vp.is_complete(16));
    }

    #[test]
    fn select_star_workload_stays_unpartitioned() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = Workload::from_queries([
            parse_query(&c.schema, "SELECT * FROM photoobj WHERE type = 3").unwrap(),
            parse_query(&c.schema, "SELECT * FROM photoobj WHERE run = 5").unwrap(),
        ]);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // SELECT * touches everything: splitting can only add stitch cost.
        assert!(rec.design.vertical(photo).is_none());
    }

    #[test]
    fn horizontal_partitioning_proposed_for_range_heavy_workload() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = narrow_workload(&c);
        let rec = advisor.recommend(&w);
        let photo = c.schema.table_by_name("photoobj").unwrap().id;
        // ra is repeatedly range-restricted: horizontal partitioning on ra
        // should survive the benefit test.
        let hp = rec.design.horizontal(photo);
        assert!(hp.is_some());
        assert_eq!(hp.unwrap().column, 1, "partition on ra");
    }

    #[test]
    fn replication_budget_is_respected() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let budget = 4 * 1024 * 1024;
        let advisor = AutoPartAdvisor::new(
            &inum,
            AutoPartConfig {
                replication_budget_bytes: budget,
                ..Default::default()
            },
        );
        // objid is co-accessed with both {ra,dec} and {r}: replicating it
        // may help.
        let w = Workload::from_queries([
            parse_query(
                &c.schema,
                "SELECT objid, ra, dec FROM photoobj WHERE ra < 100",
            )
            .unwrap(),
            parse_query(&c.schema, "SELECT objid, r FROM photoobj WHERE r < 15").unwrap(),
        ]);
        let rec = advisor.recommend(&w);
        assert!(rec.replication_bytes <= budget);
    }

    #[test]
    fn recommendation_never_regresses() {
        let c = sdss_catalog(0.01);
        let opt = Optimizer::new();
        let inum = Inum::new(&c, &opt);
        let advisor = AutoPartAdvisor::new(&inum, AutoPartConfig::default());
        let w = sdss_workload(&c, 18, 33);
        let rec = advisor.recommend(&w);
        assert!(
            rec.cost <= rec.base_cost + 1e-6,
            "{} vs {}",
            rec.cost,
            rec.base_cost
        );
    }
}
