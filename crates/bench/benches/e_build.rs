//! E-build — the cost of *building* the cost matrix, and what the
//! incremental + parallel paths buy back.
//!
//! After E4 made configuration costing pure lookups, the dominant
//! remaining cost of the online scenario is constructing the matrix every
//! epoch. This bench measures three things on the scenario-3 drift
//! workload (recurring concrete queries, a small drifting minority per
//! epoch):
//!
//! (a) **fresh-per-epoch**: building a new `CostMatrix` for every epoch
//!     (what COLT did before the persistent matrix),
//! (b) **incremental epoch update**: one persistent matrix; each epoch
//!     adds its queries (recurring ones reuse their resident cells) and
//!     retires the leftovers — work scales with the drift, not the epoch
//!     length (gate: ≥5× faster than (a), agreement ≤1e-12), and
//! (c) **parallel cold build**: `CostMatrix::build_with_threads` at 1 vs
//!     4 workers (gate: ≥2× at 4 threads — only reachable on a machine
//!     with ≥4 cores; `available_parallelism` is recorded alongside so
//!     single-core CI numbers are interpretable), and
//! (d) **concurrent reader serving**: sustained what-if lookups/sec from
//!     N lock-free snapshot readers (`CostMatrix::reader`) while the
//!     writer keeps rotating epochs and publishing generations.
//!
//! All rows land in `BENCH_build.json` (set `BENCH_BUILD_JSON` to a path,
//! or use `make bench-json`).

use criterion::{criterion_group, criterion_main, test_mode, Criterion};
use pgdesign::Designer;
use pgdesign_bench::SCALE;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::Catalog;
use pgdesign_colt::{ColtConfig, EpochMode};
use pgdesign_inum::{decode_snapshot, encode_published, restore_matrix, Clock, CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_optimizer::Optimizer;
use pgdesign_query::ast::Query;
use pgdesign_query::generators::sdss_template;
use pgdesign_query::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The scenario-3 drift pool: a sequence of *concrete* queries (fixed
/// literals, as a parameterized application would repeat them). Epoch `e`
/// is the window `pool[e*drift .. e*drift + epoch_len]`, so consecutive
/// epochs share `epoch_len - drift` queries and differ in `drift`.
fn drift_pool(catalog: &Catalog, len: usize, seed: u64) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|i| sdss_template(catalog, i % 9, &mut rng))
        .collect()
}

fn epoch_workload(pool: &[Query], e: usize, epoch_len: usize, drift: usize) -> Workload {
    Workload::from_queries(pool[e * drift..e * drift + epoch_len].iter().cloned())
}

fn bench_build(c: &mut Criterion) {
    let catalog = sdss_catalog(SCALE);
    let optimizer = Optimizer::new();
    let inum = Inum::new(&catalog, &optimizer);

    let (epochs, epoch_len, drift) = if test_mode() { (4, 10, 2) } else { (10, 40, 3) };
    let pool = drift_pool(&catalog, epoch_len + epochs * drift, 0xB111D);
    let all = Workload::from_queries(pool.iter().cloned());
    // The candidate pool an advisor would actually run with: the base
    // enumeration plus CoPhy's merged candidates.
    let cands = pgdesign_cophy::merging::augment_with_merges(
        &catalog,
        &workload_candidates(&catalog, &all, &CandidateConfig::default()),
        4,
        64,
    );
    // Warm the skeleton cache once: both build paths then pay only cell
    // work, which is the comparison that matters.
    inum.prepare_workload(&all);

    // Epoch workloads are materialized outside every timed region so both
    // strategies measure matrix work only.
    let epoch_ws: Vec<Workload> = (0..=epochs)
        .map(|e| epoch_workload(&pool, e, epoch_len, drift))
        .collect();

    // Both strategies are measured `REPS` times and the minimum total is
    // kept — the standard way to strip scheduler noise from short runs.
    const REPS: usize = 3;

    // (a) Fresh per-epoch builds, epochs 1..n (epoch 0 is the cold start
    // both strategies share). Each epoch's matrix is dropped before the
    // next is built — exactly the old per-epoch COLT flow — so both
    // strategies pay their cell deallocation inside the timed region.
    let mut fresh_total = f64::INFINITY;
    let mut last_fresh = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for w in &epoch_ws[1..epochs] {
            last_fresh = Some(CostMatrix::build_with_threads(&inum, w, &cands.indexes, 1));
        }
        fresh_total = fresh_total.min(t0.elapsed().as_secs_f64());
    }

    // (b) One persistent matrix, incrementally rotated through the same
    // epochs. Add first, retire after — recurring queries keep their
    // resident cells. Each rep restarts from an epoch-0 matrix (built
    // outside the timed region).
    let mut incr_total = f64::INFINITY;
    let mut persistent = CostMatrix::build_with_threads(&inum, &epoch_ws[0], &cands.indexes, 1);
    let mut epoch_qids: Vec<Vec<usize>> = Vec::new();
    for rep in 0..REPS {
        if rep > 0 {
            persistent = CostMatrix::build_with_threads(&inum, &epoch_ws[0], &cands.indexes, 1);
        }
        let t1 = Instant::now();
        epoch_qids.clear();
        for w in &epoch_ws[1..epochs] {
            let qids = persistent.add_queries(w.iter());
            let keep: std::collections::HashSet<usize> = qids.iter().copied().collect();
            let stale: Vec<usize> = persistent
                .active_query_ids()
                .filter(|id| !keep.contains(id))
                .collect();
            for id in stale {
                persistent.retire_query(id);
            }
            epoch_qids.push(qids);
        }
        incr_total = incr_total.min(t1.elapsed().as_secs_f64());
    }

    // Agreement: after the final rotation the persistent matrix must cost
    // the last epoch identically to its fresh counterpart (≤1e-12).
    let last_fresh = last_fresh.expect("≥2 epochs");
    let last_fresh = &last_fresh;
    let last_qids = epoch_qids.last().expect("≥2 epochs");
    let mut agreement: f64 = 0.0;
    for k in 0..=cands.indexes.len().min(6) {
        let cfg_fresh = last_fresh.config_of((0..k).map(|i| i * 2 % cands.indexes.len().max(1)));
        let cfg_inc = persistent.config_of((0..k).map(|i| i * 2 % cands.indexes.len().max(1)));
        for (pos, &qid) in last_qids.iter().enumerate() {
            let a = persistent.cost(qid, &cfg_inc);
            let b = last_fresh.cost(pos, &cfg_fresh);
            agreement = agreement.max((a - b).abs() / b.abs().max(1.0));
        }
    }

    // (c) Parallel cold build over the whole pool: serial vs 4 workers.
    let mut cold_serial = f64::INFINITY;
    let mut cold_parallel = f64::INFINITY;
    let mut serial = CostMatrix::build_with_threads(&inum, &all, &cands.indexes, 1);
    let mut par = CostMatrix::build_with_threads(&inum, &all, &cands.indexes, 4);
    for _ in 0..REPS {
        let t2 = Instant::now();
        serial = CostMatrix::build_with_threads(&inum, &all, &cands.indexes, 1);
        cold_serial = cold_serial.min(t2.elapsed().as_secs_f64());
        let t3 = Instant::now();
        par = CostMatrix::build_with_threads(&inum, &all, &cands.indexes, 4);
        cold_parallel = cold_parallel.min(t3.elapsed().as_secs_f64());
    }
    let mut par_agreement: f64 = 0.0;
    for qi in 0..all.len() {
        let cfg = serial.config_of(0..cands.indexes.len());
        let a = serial.cost(qi, &cfg);
        let b = par.cost(qi, &cfg);
        par_agreement = par_agreement.max((a - b).abs() / b.abs().max(1.0));
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // (e) Warm restart: encode the published matrix into snapshot
    // records, then decode + restore onto a *second* INUM — the recovery
    // path a durable session takes at open (`TuningSession::open_or_create`)
    // — versus paying the cold build again. Restore adopts the persisted
    // cells instead of recomputing them, so it is pure decode work.
    serial.publish();
    let records = encode_published(&serial);
    let snapshot_bytes: usize = records.iter().map(|r| r.len()).sum();
    let opt2 = Optimizer::new();
    let inum2 = Inum::new(&catalog, &opt2);
    let mut restore_total = f64::INFINITY;
    let mut restore_cells = 0u64;
    let mut restored_last = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let decoded = decode_snapshot(&records).expect("decode snapshot");
        restore_cells = decoded.cells;
        let (restored, _) = restore_matrix(&inum2, decoded).expect("restore");
        restore_total = restore_total.min(t.elapsed().as_secs_f64());
        restored_last = Some(restored);
    }
    let restored = restored_last.expect("REPS > 0");
    assert_eq!(inum2.matrix_stats().builds, 0, "restore must not build");
    let mut restore_agreement: f64 = 0.0;
    {
        let cfg = serial.config_of(0..cands.indexes.len());
        for qi in 0..all.len() {
            let a = serial.cost(qi, &cfg);
            let b = restored.cost(qi, &cfg);
            restore_agreement = restore_agreement.max((a - b).abs() / b.abs().max(1.0));
        }
    }
    let restore_speedup = cold_serial / restore_total.max(1e-12);

    // (d) Concurrent what-if serving: sustained snapshot lookups/sec from
    // N lock-free readers while the writer keeps rotating epochs and
    // publishing generations — the tail-latency story behind the
    // `TuningSession::reader` API. Readers clone one `MatrixReader` and
    // never take a lock; the writer pays the whole synchronization bill.
    let reader_threads = 4usize;
    let serve_secs = if test_mode() { 0.05 } else { 0.25 };
    let mut serve_generations = 0u64;
    let (served, serve_elapsed) = {
        use rand::Rng;
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = AtomicBool::new(false);
        let reader0 = persistent.reader();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..reader_threads)
                .map(|t| {
                    let mut reader = reader0.clone();
                    let stop = &stop;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0xD00D + t as u64);
                        let mut n = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            reader.refresh();
                            let snap = reader.snapshot();
                            let actives: Vec<usize> = snap.active_query_ids().collect();
                            let n_cands = snap.n_candidates().max(1);
                            let cfg = snap.config_of(
                                (0..rng.random_range(0..6usize))
                                    .map(|_| rng.random_range(0..n_cands)),
                            );
                            for &qid in &actives {
                                let _ = snap.cost(qid, &cfg);
                                n += 1;
                            }
                        }
                        n
                    })
                })
                .collect();
            let t4 = Instant::now();
            while t4.elapsed().as_secs_f64() < serve_secs {
                let w = &epoch_ws[(serve_generations as usize) % epoch_ws.len()];
                let qids = persistent.add_queries(w.iter());
                let keep: std::collections::HashSet<usize> = qids.iter().copied().collect();
                let stale: Vec<usize> = persistent
                    .active_query_ids()
                    .filter(|id| !keep.contains(id))
                    .collect();
                for id in stale {
                    persistent.retire_query(id);
                }
                persistent.publish();
                serve_generations += 1;
            }
            stop.store(true, Ordering::Release);
            let elapsed = t4.elapsed().as_secs_f64();
            let total: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
            (total, elapsed)
        })
    };
    let reader_rate = served as f64 / serve_elapsed.max(1e-12);

    // (f) Degraded epochs: the drift stream pushed through the online
    // daemon (`OnlineSession`) under epoch-deadline pressure on a ticking
    // test clock, while snapshot readers keep serving. The deadline
    // cycles one relaxed epoch, one tightly-deadlined epoch, one
    // zero-deadline epoch — walking all three rungs of the degradation
    // ladder — and the row records how service held up: every rung
    // observed, staleness bounded and metered, reader throughput nonzero
    // straight through `Stale` epochs.
    struct TickClock {
        step: u64,
        nanos: std::sync::atomic::AtomicU64,
    }
    impl Clock for TickClock {
        fn now_nanos(&self) -> u64 {
            self.nanos
                .fetch_add(self.step, std::sync::atomic::Ordering::SeqCst)
        }
    }
    let (d_epochs, d_len) = if test_mode() { (6, 8) } else { (9, 25) };
    let designer = Designer::new(sdss_catalog(SCALE));
    let mut session = designer.online_session(ColtConfig {
        epoch_length: d_len,
        whatif_budget_per_epoch: if test_mode() { 40 } else { 120 },
        ..ColtConfig::default()
    });
    session.set_clock(std::sync::Arc::new(TickClock {
        step: 200_000, // 0.2ms per clock read: a 4ms budget expires mid-epoch
        nanos: std::sync::atomic::AtomicU64::new(0),
    }));
    let mut mode_counts = [0usize; 3]; // full / incremental-only / stale
    let mut max_stale = 0u64;
    let (served_degraded, degraded_elapsed) = {
        use rand::Rng;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;
        let mut stream_rng = StdRng::seed_from_u64(0xDE6);
        let stop = AtomicBool::new(false);
        let reader0 = session.reader();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..reader_threads)
                .map(|t| {
                    let mut reader = reader0.clone();
                    let stop = &stop;
                    s.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(0xFADE + t as u64);
                        let mut n = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            reader.refresh();
                            let snap = reader.snapshot();
                            let actives: Vec<usize> = snap.active_query_ids().collect();
                            let n_cands = snap.n_candidates().max(1);
                            let cfg = snap.config_of(
                                (0..rng.random_range(0..4usize))
                                    .map(|_| rng.random_range(0..n_cands)),
                            );
                            for &qid in &actives {
                                let _ = snap.cost(qid, &cfg);
                                n += 1;
                            }
                        }
                        n
                    })
                })
                .collect();
            let t5 = Instant::now();
            for e in 0..d_epochs {
                session.set_epoch_deadline(match e % 3 {
                    0 => None,
                    1 => Some(Duration::from_millis(4)),
                    _ => Some(Duration::ZERO),
                });
                for _ in 0..d_len {
                    let q = sdss_template(
                        &designer.catalog,
                        stream_rng.random_range(0..9usize),
                        &mut stream_rng,
                    );
                    if let Some(r) = session.observe(q) {
                        mode_counts[match r.mode {
                            EpochMode::Full => 0,
                            EpochMode::IncrementalOnly => 1,
                            EpochMode::Stale => 2,
                        }] += 1;
                    }
                }
                max_stale = max_stale.max(session.staleness_generations());
            }
            stop.store(true, Ordering::Release);
            let elapsed = t5.elapsed().as_secs_f64();
            let total: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
            (total, elapsed)
        })
    };
    let degraded_rate = served_degraded as f64 / degraded_elapsed.max(1e-12);

    let incr_speedup = fresh_total / incr_total.max(1e-12);
    let par_speedup = cold_serial / cold_parallel.max(1e-12);
    println!(
        "=== E-build: matrix construction ({} epochs x {} queries, drift {}) ===",
        epochs, epoch_len, drift
    );
    println!(
        "fresh-per-epoch: {:7.2} ms   incremental: {:7.2} ms   speedup {:5.1}x   agreement {:.2e}",
        fresh_total * 1e3,
        incr_total * 1e3,
        incr_speedup,
        agreement
    );
    println!(
        "cold build:      {:7.2} ms   4 threads:   {:7.2} ms   speedup {:5.1}x   (cores available: {cores})   agreement {:.2e}",
        cold_serial * 1e3,
        cold_parallel * 1e3,
        par_speedup,
        par_agreement
    );
    println!(
        "warm restart:    {:7.2} ms to decode+restore {} cells ({} snapshot bytes)   vs cold {:5.1}x   agreement {:.2e}",
        restore_total * 1e3,
        restore_cells,
        snapshot_bytes,
        restore_speedup,
        restore_agreement
    );
    println!(
        "reader serving:  {:7.0} lookups/s from {reader_threads} threads during {} rotations ({:.0} ms window)",
        reader_rate,
        serve_generations,
        serve_elapsed * 1e3
    );
    println!(
        "degraded rotate: {d_epochs} deadline-cycled epochs → {} full / {} incremental-only / {} stale, \
         max staleness {max_stale} generations; readers held {:7.0} lookups/s",
        mode_counts[0], mode_counts[1], mode_counts[2], degraded_rate
    );
    let s = inum.matrix_stats();
    println!(
        "matrix counters: {} builds, {} cells computed, {} cells reused, {:.1} ms total build time",
        s.builds,
        s.cells,
        s.cells_reused,
        s.build_nanos as f64 / 1e6
    );

    if let Ok(path) = std::env::var("BENCH_BUILD_JSON") {
        let degraded_row = format!(
            "{{\"row\": \"degraded-epoch\", \"epochs\": {d_epochs}, \"full\": {}, \
             \"incremental_only\": {}, \"stale\": {}, \"max_staleness_generations\": {max_stale}, \
             \"reader_threads\": {reader_threads}, \"lookups_per_sec\": {degraded_rate:.0}, \
             \"window_ms\": {:.1}}}",
            mode_counts[0],
            mode_counts[1],
            mode_counts[2],
            degraded_elapsed * 1e3,
        );
        let json = format!(
            "{{\n  \"experiment\": \"build\",\n  \"scale\": {SCALE},\n  \
             \"epochs\": {epochs},\n  \"epoch_len\": {epoch_len},\n  \"drift\": {drift},\n  \
             \"rows\": [\n    \
             {{\"row\": \"epoch-update\", \"fresh_per_epoch_ms\": {:.3}, \"incremental_ms\": {:.3}, \
             \"incremental_vs_fresh_speedup\": {:.2}, \"agreement_err\": {:.3e}}},\n    \
             {{\"row\": \"cold-build\", \"serial_ms\": {:.3}, \"parallel_4t_ms\": {:.3}, \
             \"parallel_speedup_4t\": {:.2}, \"available_parallelism\": {cores}, \
             \"agreement_err\": {:.3e}}},\n    \
             {{\"row\": \"warm-restart\", \"restore_ms\": {:.3}, \"cold_build_ms\": {:.3},              \"restore_vs_cold_speedup\": {:.2}, \"snapshot_bytes\": {snapshot_bytes},              \"cells_restored\": {restore_cells}, \"agreement_err\": {:.3e}}},\n                 {{\"row\": \"reader-throughput\", \"reader_threads\": {reader_threads}, \
             \"lookups_per_sec\": {:.0}, \"generations_published\": {serve_generations}, \
             \"window_ms\": {:.1}}},\n    {degraded_row}\n  ],\n  \
             \"cells_computed\": {},\n  \"cells_reused\": {}\n}}\n",
            fresh_total * 1e3,
            incr_total * 1e3,
            incr_speedup,
            agreement,
            cold_serial * 1e3,
            cold_parallel * 1e3,
            par_speedup,
            par_agreement,
            restore_total * 1e3,
            cold_serial * 1e3,
            restore_speedup,
            restore_agreement,
            reader_rate,
            serve_elapsed * 1e3,
            s.cells,
            s.cells_reused,
        );
        std::fs::write(&path, json).expect("write BENCH_build.json");
        println!("wrote {path}");
    }

    // Criterion rows for the two hot operations.
    let mut g = c.benchmark_group("e_build");
    let epoch_next = &epoch_ws[epochs];
    g.bench_function("cold_build_serial", |b| {
        b.iter(|| CostMatrix::build_with_threads(&inum, &epoch_ws[0], &cands.indexes, 1))
    });
    g.bench_function("incremental_epoch_update", |b| {
        b.iter(|| {
            let qids = persistent.add_queries(epoch_next.iter());
            let keep: std::collections::HashSet<usize> = qids.iter().copied().collect();
            let stale: Vec<usize> = persistent
                .active_query_ids()
                .filter(|id| !keep.contains(id))
                .collect();
            for id in stale {
                persistent.retire_query(id);
            }
            qids.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
