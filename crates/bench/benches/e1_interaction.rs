//! E1 — Scenario 1 + Figure 2: interactive what-if evaluation and the
//! index interaction graph.
//!
//! Prints the benefit panel and the Fig-2 edge list for a DBA-chosen
//! candidate set, then measures the cost of a full interaction analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign_bench::setup;
use pgdesign_catalog::design::Index;
use pgdesign_interaction::{analyze, InteractionConfig};
use pgdesign_inum::Inum;

fn dba_candidates(bench: &pgdesign_bench::Bench) -> Vec<Index> {
    let photo = bench.catalog.schema.table_by_name("photoobj").unwrap().id;
    let spec = bench.catalog.schema.table_by_name("specobj").unwrap().id;
    vec![
        Index::new(photo, vec![0]),     // objid
        Index::new(photo, vec![1, 2]),  // (ra, dec)
        Index::new(photo, vec![3, 6]),  // (type, r)
        Index::new(photo, vec![6, 3]),  // (r, type) — competes with above
        Index::new(photo, vec![9, 10]), // (run, camcol)
        Index::new(spec, vec![1]),      // bestobjid
        Index::new(spec, vec![3]),      // zredshift
    ]
}

fn print_report() {
    let bench = setup(20, 0xE1);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    let candidates = dba_candidates(&bench);

    // Scenario-1 benefit panel.
    let empty = pgdesign_catalog::design::PhysicalDesign::empty();
    let whatif = pgdesign_catalog::design::PhysicalDesign::with_indexes(candidates.clone());
    let base = inum.workload_cost(&empty, &bench.workload);
    let tuned = inum.workload_cost(&whatif, &bench.workload);
    println!("=== E1: interactive what-if benefit (20 SDSS queries) ===");
    println!(
        "workload cost: {base:.1} -> {tuned:.1}  (avg benefit {:.1}%)",
        100.0 * (base - tuned) / base
    );

    let analysis = analyze(
        &inum,
        &bench.workload,
        &candidates,
        &InteractionConfig::default(),
    );
    let graph = analysis.graph();
    println!(
        "--- Figure 2: interaction graph, top 10 of {} edges ---",
        graph.edge_count()
    );
    print!("{}", graph.to_text(&bench.catalog.schema, 10));
    let parts = analysis.stable_partition(0.01);
    println!(
        "stable partition: {} independent group(s): {:?}",
        parts.len(),
        parts
    );
}

fn bench_analysis(c: &mut Criterion) {
    print_report();
    let bench = setup(20, 0xE1);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    let candidates = dba_candidates(&bench);
    // Warm the INUM cache once so we measure the steady interactive state.
    let _ = analyze(
        &inum,
        &bench.workload,
        &candidates,
        &InteractionConfig::default(),
    );
    let mut g = c.benchmark_group("e1");
    g.sample_size(10);
    g.bench_function("interaction_analysis_7idx_20q", |b| {
        b.iter(|| {
            analyze(
                &inum,
                &bench.workload,
                &candidates,
                &InteractionConfig::default(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
