//! E7 — the zero-size what-if fallacy (§2): Monteiro et al. "assume the
//! size of the indexes to be zero, which severely affects the accuracy of
//! the optimizer when what-if indexes are used".
//!
//! Compares a size-aware advisor against a zero-size advisor (every
//! candidate appears free, so everything beneficial is 'selected') and
//! prints the storage-budget violation and the benefit mis-estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign_autopart::AutoPartConfig;
use pgdesign_bench::{mib, setup};
use pgdesign_catalog::design::PhysicalDesign;
use pgdesign_cophy::{greedy_select, CophyAdvisor, CophyConfig};
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};

fn print_report() {
    let bench = setup(27, 0xE7);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    inum.prepare_workload(&bench.workload);
    let budget = bench.catalog.data_bytes() / 4;
    let cands = workload_candidates(&bench.catalog, &bench.workload, &CandidateConfig::default());
    let matrix = CostMatrix::build(&inum, &bench.workload, &cands.indexes);
    let base = inum.workload_cost(&PhysicalDesign::empty(), &bench.workload);

    // Size-aware advisor: greedy under the real budget.
    let aware = greedy_select(&matrix, budget);
    let aware_design =
        PhysicalDesign::with_indexes(aware.chosen.iter().map(|&i| cands.indexes[i].clone()));
    let aware_bytes = aware_design.index_bytes(&bench.catalog.schema, &bench.catalog.stats);

    // Zero-size advisor: believes every index is free, so it takes every
    // candidate with positive benefit ("unlimited" budget); the *claimed*
    // storage is zero, the actual storage is whatever those indexes weigh.
    let zero = greedy_select(&matrix, u64::MAX / 2);
    let zero_design =
        PhysicalDesign::with_indexes(zero.chosen.iter().map(|&i| cands.indexes[i].clone()));
    let zero_bytes = zero_design.index_bytes(&bench.catalog.schema, &bench.catalog.stats);

    println!("=== E7: size-aware vs zero-size what-if indexes (budget = 0.25x data) ===");
    println!(
        "{:<22} {:>10} {:>12} {:>14} {:>14}",
        "advisor", "#indexes", "cost", "claimed MiB", "actual MiB"
    );
    println!(
        "{:<22} {:>10} {:>12.0} {:>14.1} {:>14.1}",
        "size-aware (budget)",
        aware.chosen.len(),
        aware.cost,
        mib(aware_bytes),
        mib(aware_bytes)
    );
    println!(
        "{:<22} {:>10} {:>12.0} {:>14.1} {:>14.1}",
        "zero-size (Monteiro)",
        zero.chosen.len(),
        zero.cost,
        0.0,
        mib(zero_bytes)
    );

    // Joint index + partition advisor under the same budget: replicated
    // fragment bytes are size-accounted exactly like index bytes (the
    // partition half of the what-if size model), so the joint design
    // stays buildable where the zero-size advisor's is not.
    let joint = CophyAdvisor::new(
        &inum,
        CophyConfig {
            storage_budget_bytes: budget,
            ..Default::default()
        },
    )
    .recommend_joint(&bench.workload, AutoPartConfig::default());
    let joint_bytes = joint.total_index_bytes + joint.replication_bytes;
    println!(
        "{:<22} {:>10} {:>12.0} {:>14.1} {:>14.1}",
        "joint (idx+partitions)",
        joint.indexes.len(),
        joint.cost,
        mib(joint_bytes),
        mib(joint_bytes)
    );
    assert!(
        joint_bytes <= budget,
        "joint advisor must stay within the shared budget"
    );
    println!(
        "base workload cost: {base:.0}; storage budget: {:.1} MiB",
        mib(budget)
    );
    if zero_bytes > budget {
        println!(
            "zero-size advisor OVERSHOOTS the budget by {:.1}x — the design is unbuildable",
            zero_bytes as f64 / budget as f64
        );
    }
    println!(
        "benefit the zero-size advisor promises but cannot deliver within budget: {:.1}%",
        100.0 * (aware.cost - zero.cost).max(0.0) / base
    );
}

fn bench_selection(c: &mut Criterion) {
    print_report();
    let bench = setup(27, 0xE7);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    inum.prepare_workload(&bench.workload);
    let budget = bench.catalog.data_bytes() / 4;
    let cands = workload_candidates(&bench.catalog, &bench.workload, &CandidateConfig::default());
    let matrix = CostMatrix::build(&inum, &bench.workload, &cands.indexes);
    let mut g = c.benchmark_group("e7");
    g.sample_size(10);
    g.bench_function("greedy_select_budgeted", |b| {
        b.iter(|| greedy_select(&matrix, budget))
    });
    g.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
