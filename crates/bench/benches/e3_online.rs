//! E3 — Scenario 3: continuous tuning of a drifting workload.
//!
//! Prints the per-epoch (untuned vs COLT) cost series across 12 phases of
//! drift — the chart the demo shows live — then measures per-query
//! observation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign::Designer;
use pgdesign_bench::SCALE;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_colt::ColtConfig;
use pgdesign_query::generators::DriftingStream;

fn colt_config(designer: &Designer) -> ColtConfig {
    ColtConfig {
        epoch_length: 25,
        storage_budget_bytes: designer.catalog.data_bytes() / 4,
        whatif_budget_per_epoch: 120,
        ewma_alpha: 0.6,
        payback_horizon_epochs: 6.0,
        epoch_deadline: None,
    }
}

fn print_report() {
    let catalog = sdss_catalog(SCALE);
    let designer = Designer::new(catalog.clone());
    let mut stream = DriftingStream::sdss_default(catalog, 50, 0xE3);
    let mut session = designer.online_session(colt_config(&designer));

    println!("=== E3: continuous tuning under drift (12 phases x 50 queries) ===");
    for _ in 0..12 {
        session.observe_all(stream.batch(50));
    }
    println!("{}", session.trajectory());
    let (untuned, tuned) = session.cumulative_costs();
    println!(
        "cumulative: untuned {untuned:.0}, COLT {tuned:.0}  ({:.1}% saved)",
        100.0 * (untuned - tuned).max(0.0) / untuned
    );
    let events: usize = session.reports().iter().map(|r| r.events.len()).sum();
    println!(
        "configuration changes: {events}; final on-line set: {:?}",
        session
            .current_design()
            .indexes()
            .iter()
            .map(|i| i.display(&designer.catalog.schema))
            .collect::<Vec<_>>()
    );
}

fn bench_observe(c: &mut Criterion) {
    print_report();
    let catalog = sdss_catalog(SCALE);
    let designer = Designer::new(catalog.clone());
    let mut stream = DriftingStream::sdss_default(catalog, 50, 0xE3);
    let queries = stream.batch(500);
    let mut g = c.benchmark_group("e3");
    g.sample_size(10);
    g.bench_function("colt_process_500_queries", |b| {
        b.iter(|| {
            let mut session = designer.online_session(colt_config(&designer));
            session.observe_all(queries.iter().cloned());
            session.reports().len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_observe);
criterion_main!(benches);
