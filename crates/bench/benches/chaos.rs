//! The randomized chaos sweep: many more seeded schedules than the
//! tier-1 gate runs, for CI's non-gating robustness soak.
//!
//! ```text
//! CHAOS_SCHEDULES=5000 CHAOS_SEED=123 cargo bench -p pgdesign-bench --bench chaos
//! ```
//!
//! `CHAOS_SEED` defaults to a value derived from the calendar day, so
//! successive CI runs sweep fresh seed ranges while any single run stays
//! replayable from the seed it prints. Under `cargo test` (which passes
//! `--test` to `harness = false` bench targets) this shrinks to a
//! smoke-test handful — the real tier-1 gate is `tests/chaos.rs` with its
//! fixed seed range.

use criterion::test_mode;
use pgdesign_bench::chaos;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = if test_mode() {
        8
    } else {
        env_u64("CHAOS_SCHEDULES", 2000) as usize
    };
    // Day-granular default seed: deterministic within a day's reruns,
    // fresh coverage across days.
    let day = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs() / 86_400);
    let seed = env_u64("CHAOS_SEED", 0x5EED_0000 + day);
    let t0 = Instant::now();
    let out = chaos::run_schedules(seed, n);
    let secs = t0.elapsed().as_secs_f64();
    println!("=== chaos sweep: {n} schedules from seed {seed:#x} in {secs:.1}s ===");
    println!("{out:#?}");
    assert_eq!(out.schedules as usize, n);
    assert!(
        out.max_rel_err <= 1e-12,
        "served costs drifted from fresh rebuilds: {:.3e}",
        out.max_rel_err
    );
    println!(
        "chaos sweep passed: zero panics, max_rel_err {:.3e}",
        out.max_rel_err
    );
}
