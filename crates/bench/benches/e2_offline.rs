//! E2 — Scenario 2 + Figure 3: automatic index + partition suggestion
//! under storage budgets, CoPhy vs the greedy baseline.
//!
//! Prints the Fig-3-style panel (suggested features, per-query and average
//! benefit) across budgets {0.25×, 0.5×, 1×} of the data size, then
//! measures one full `recommend` run.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign::Designer;
use pgdesign_bench::{mib, setup};
use pgdesign_cophy::greedy_select;
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};

fn print_report() {
    let bench = setup(27, 0xE2);
    let designer = Designer::new(bench.catalog.clone());
    let data = designer.catalog.data_bytes();

    println!("=== E2: offline design across storage budgets (27 SDSS queries) ===");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>8} {:>8} {:>9} {:>10}",
        "budget", "base", "cophy", "greedy", "benefit", "#idx", "gap%", "sched+%"
    );
    for frac in [0.25, 0.5, 1.0] {
        let budget = (data as f64 * frac) as u64;
        let report = designer.recommend(&bench.workload, budget);
        // Greedy baseline at the same budget.
        let inum = Inum::new(&designer.catalog, &designer.optimizer);
        let cands = workload_candidates(
            &designer.catalog,
            &bench.workload,
            &CandidateConfig::default(),
        );
        let matrix = CostMatrix::build(&inum, &bench.workload, &cands.indexes);
        let greedy = greedy_select(&matrix, budget);
        let sched_save = if report.naive_schedule.area > 0.0 {
            100.0 * (report.naive_schedule.area - report.schedule.area).max(0.0)
                / report.naive_schedule.area
        } else {
            0.0
        };
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>7.1}% {:>8} {:>8.2} {:>9.1}",
            format!("{frac}x"),
            report.base_cost,
            report.indexes.cost,
            greedy.cost,
            100.0 * report.average_benefit(),
            report.indexes.indexes.len(),
            100.0 * report.indexes.gap,
            sched_save,
        );
        if (frac - 0.5).abs() < 1e-9 {
            println!("--- Figure 3 panel at 0.5x budget ---");
            println!("{report}");
            println!(
                "index storage used: {:.1} MiB of {:.1} MiB budget",
                mib(report.indexes.total_index_bytes),
                mib(budget)
            );
        }
    }
}

fn bench_recommend(c: &mut Criterion) {
    print_report();
    let bench = setup(27, 0xE2);
    let designer = Designer::new(bench.catalog.clone());
    let budget = designer.catalog.data_bytes() / 2;
    let mut g = c.benchmark_group("e2");
    g.sample_size(10);
    g.bench_function("full_offline_recommend_27q", |b| {
        b.iter(|| designer.recommend(&bench.workload, budget))
    });
    g.finish();
}

criterion_group!(benches, bench_recommend);
criterion_main!(benches);
