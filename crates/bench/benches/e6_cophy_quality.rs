//! E6 — CoPhy's quality/time trade-off: "CoPhy allows to trade off
//! execution time against the quality of the suggested solutions."
//!
//! Sweeps the branch-and-bound node budget and prints cost, certified gap
//! and wall time at each point, with the greedy baseline as the reference
//! line. Criterion measures one mid-budget solve.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign_bench::setup;
use pgdesign_cophy::{greedy_select, CophyAdvisor, CophyConfig};
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_solver::MilpOptions;
use std::time::{Duration, Instant};

fn print_report() {
    let bench = setup(27, 0xE6);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    inum.prepare_workload(&bench.workload);
    let budget = bench.catalog.data_bytes() / 4;

    // Greedy reference.
    let cands = workload_candidates(&bench.catalog, &bench.workload, &CandidateConfig::default());
    let t = Instant::now();
    let matrix = CostMatrix::build(&inum, &bench.workload, &cands.indexes);
    let greedy = greedy_select(&matrix, budget);
    let greedy_ms = t.elapsed().as_secs_f64() * 1e3;

    println!("=== E6: CoPhy anytime quality (27 queries, budget = 0.25x data) ===");
    println!(
        "greedy baseline: cost {:.0}  ({} indexes, {:.1} ms, {} evaluations)",
        greedy.cost,
        greedy.chosen.len(),
        greedy_ms,
        greedy.evaluations
    );
    println!(
        "{:>10} {:>12} {:>8} {:>8} {:>10} {:>8}",
        "nodes", "cost", "gap%", "#idx", "time(ms)", "status"
    );
    for node_limit in [0usize, 5, 50, 500, 50_000] {
        let advisor = CophyAdvisor::new(
            &inum,
            CophyConfig {
                storage_budget_bytes: budget,
                solver: MilpOptions {
                    node_limit,
                    time_limit: Duration::from_secs(30),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let t = Instant::now();
        let rec = advisor.recommend(&bench.workload);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>10} {:>12.0} {:>8.2} {:>8} {:>10.1} {:>8?}",
            node_limit,
            rec.cost,
            100.0 * rec.gap,
            rec.indexes.len(),
            ms,
            rec.status
        );
    }
}

fn bench_solve(c: &mut Criterion) {
    print_report();
    let bench = setup(27, 0xE6);
    let inum = Inum::new(&bench.catalog, &bench.optimizer);
    inum.prepare_workload(&bench.workload);
    let budget = bench.catalog.data_bytes() / 4;
    let mut g = c.benchmark_group("e6");
    g.sample_size(10);
    g.bench_function("cophy_recommend_500_nodes", |b| {
        b.iter(|| {
            let advisor = CophyAdvisor::new(
                &inum,
                CophyConfig {
                    storage_budget_bytes: budget,
                    solver: MilpOptions {
                        node_limit: 500,
                        time_limit: Duration::from_secs(30),
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            advisor.recommend(&bench.workload)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
