//! E4 — the INUM claim (§1): caching "increase[s] the efficiency of the
//! selection tool by orders of magnitude".
//!
//! Costs many candidate configurations through three paths:
//!
//! (a) full re-optimization (`Inum::exact_cost`),
//! (b) the warm skeleton cache (`Inum::cost` — per-design access-path
//!     enumeration on top of cached skeletons), and
//! (c) the precomputed cost matrix (`CostMatrix::cost` — pure lookups).
//!
//! The speedup of (b) over (a) grows with the plan space the skeleton
//! cache short-circuits, so the report breaks the comparison down by join
//! count; (c) over (b) is the second INUM level: configuration costing
//! with no access-path re-enumeration at all. The `e2-offline` row
//! measures the E2 offline-design workload; the trailing `partition` and
//! `joint-index+part` rows run the same three-way comparison over
//! *partitioned* configurations through the partition-aware matrix level
//! (`CostMatrix::joint_workload_cost`), which is what AutoPart's greedy
//! merge search runs on. All rows are recorded in `BENCH_e4.json` (set
//! `BENCH_E4_JSON` to a path, or use `make bench-json`). (The paper's own
//! baseline is the PostgreSQL planner, whose per-call overhead is far
//! larger than this simulator's — absolute ratios here are a lower bound
//! on the effect.)

use criterion::{criterion_group, criterion_main, test_mode, Criterion};
use pgdesign_bench::SCALE;
use pgdesign_catalog::design::HorizontalPartitioning;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::Catalog;
use pgdesign_inum::{CandidateBitset, CostMatrix, Inum, JointConfig};
use pgdesign_optimizer::candidates::{workload_candidates, CandidateConfig};
use pgdesign_optimizer::{JoinControl, Optimizer};
use pgdesign_query::generators::{sdss_template, sdss_workload};
use pgdesign_query::{parse_query, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random candidate subsets (1–3 indexes) over a candidate list.
fn random_subsets(n_candidates: usize, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.random_range(1..4usize).min(n_candidates);
            let mut ids: Vec<usize> = (0..k).map(|_| rng.random_range(0..n_candidates)).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect()
}

/// Workload classes by join count.
fn workload_classes(catalog: &Catalog) -> Vec<(&'static str, Workload)> {
    let mut rng = StdRng::seed_from_u64(0xE4);
    let single: Workload = (0..12)
        .map(|i| sdss_template(catalog, [0, 1, 2, 4, 7, 8][i % 6], &mut rng))
        .collect();
    let two: Workload = (0..12)
        .map(|i| sdss_template(catalog, [3, 5, 6][i % 3], &mut rng))
        .collect();
    let three: Workload = (0..6)
        .map(|i| {
            let run = 100 + i * 700;
            parse_query(
                &catalog.schema,
                &format!(
                    "SELECT p.objid, s.zredshift, f.quality FROM photoobj p, specobj s, field f \
                     WHERE p.objid = s.bestobjid AND p.run = f.run AND f.quality = 1 AND p.run = {run}"
                ),
            )
            .unwrap()
        })
        .collect();
    vec![("1-table", single), ("2-table", two), ("3-table", three)]
}

/// Per-class measurement row (microseconds per configuration-cost call).
struct Row {
    name: String,
    exact_us: f64,
    inum_us: f64,
    matrix_us: f64,
    /// |matrix − inum| / inum over the summed costs (should be ~0).
    agreement_err: f64,
}

impl Row {
    fn json(&self) -> String {
        let per_sec = |us: f64| 1e6 / us.max(1e-9);
        format!(
            "    {{\"class\": \"{}\", \"exact_us_per_call\": {:.3}, \"inum_us_per_call\": {:.3}, \
             \"matrix_us_per_call\": {:.3}, \"calls_per_sec_exact\": {:.0}, \
             \"calls_per_sec_inum\": {:.0}, \"calls_per_sec_matrix\": {:.0}, \
             \"speedup_inum_vs_exact\": {:.2}, \"speedup_matrix_vs_inum\": {:.2}, \
             \"speedup_matrix_vs_exact\": {:.2}, \"matrix_vs_inum_relative_error\": {:.3e}}}",
            self.name,
            self.exact_us,
            self.inum_us,
            self.matrix_us,
            per_sec(self.exact_us),
            per_sec(self.inum_us),
            per_sec(self.matrix_us),
            self.exact_us / self.inum_us.max(1e-9),
            self.inum_us / self.matrix_us.max(1e-9),
            self.exact_us / self.matrix_us.max(1e-9),
            self.agreement_err,
        )
    }
}

/// Three-way measurement of one workload over random candidate subsets.
/// `exact_configs` bounds the (expensive) re-optimization leg; the
/// cheaper INUM and matrix legs run over all `configs`.
fn measure(
    inum: &Inum<'_>,
    matrix: &CostMatrix<'_>,
    workload: &Workload,
    configs: &[Vec<usize>],
    exact_configs: usize,
    name: &str,
) -> Row {
    let n_cands = matrix.n_candidates();
    // Designs are pre-built outside every timed region so all three legs
    // measure pure costing (construction cost would slightly inflate the
    // matrix's advantage otherwise).
    let designs: Vec<_> = configs
        .iter()
        .map(|ids| matrix.design_of(&CandidateBitset::from_ids(n_cands, ids.iter().copied())))
        .collect();

    // Full re-optimization.
    let t0 = Instant::now();
    let mut exact_calls = 0usize;
    for design in designs.iter().take(exact_configs) {
        for (q, _) in workload.iter() {
            std::hint::black_box(inum.exact_cost(design, q));
            exact_calls += 1;
        }
    }
    let exact = t0.elapsed().as_secs_f64();

    // Warm skeleton cache, per-design costing.
    let t1 = Instant::now();
    let mut inum_total = 0.0;
    for design in &designs {
        for (q, w) in workload.iter() {
            inum_total += w * inum.cost(design, q);
        }
    }
    let fast = t1.elapsed().as_secs_f64();

    // Matrix lookups (bitset built once per config, outside the per-query
    // loop, mirroring how the advisors use it).
    let mut scratch = CandidateBitset::new(n_cands);
    let t2 = Instant::now();
    let mut matrix_total = 0.0;
    for ids in configs {
        scratch.clear();
        for &id in ids {
            scratch.insert(id);
        }
        matrix_total += matrix.workload_cost(&scratch);
    }
    let lookup = t2.elapsed().as_secs_f64();

    let calls = (configs.len() * workload.len()) as f64;
    Row {
        name: name.to_string(),
        exact_us: exact * 1e6 / exact_calls.max(1) as f64,
        inum_us: fast * 1e6 / calls,
        matrix_us: lookup * 1e6 / calls,
        agreement_err: (matrix_total - inum_total).abs() / inum_total.abs().max(1e-9),
    }
}

/// Random joint (index + partition) configurations: a random disjoint
/// vertical grouping of photoobj's columns, an optional horizontal split,
/// and 0–2 candidate indexes. Fragments/splits are registered on the
/// matrix as a side effect.
fn random_joint_configs(
    matrix: &mut CostMatrix<'_>,
    catalog: &Catalog,
    n: usize,
    with_indexes: bool,
    seed: u64,
) -> Vec<JointConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    let photo = catalog.schema.table_by_name("photoobj").unwrap().id;
    let width = catalog.schema.table(photo).width();
    let ra_stats = catalog.table_stats(photo).column(1);
    let n_cands = matrix.n_candidates();
    (0..n)
        .map(|_| {
            let mut cfg = matrix.empty_joint();
            // Disjoint grouping: assign every column to one of k groups.
            let k = rng.random_range(2..5usize);
            let mut groups: Vec<Vec<u16>> = vec![Vec::new(); k];
            for c in 0..width {
                groups[rng.random_range(0..k)].push(c);
            }
            for g in groups.iter().filter(|g| !g.is_empty()) {
                let id = matrix.register_fragment(photo, g);
                cfg.fragments.insert(id);
            }
            if rng.random_range(0..2) == 1 {
                let parts = rng.random_range(4..17usize);
                let bounds: Vec<f64> = (1..parts)
                    .map(|i| ra_stats.min + (ra_stats.max - ra_stats.min) * i as f64 / parts as f64)
                    .collect();
                let sid = matrix.register_split(HorizontalPartitioning::new(photo, 1, bounds));
                cfg.splits.insert(sid);
            }
            if with_indexes && n_cands > 0 {
                for _ in 0..rng.random_range(0..3usize) {
                    cfg.indexes.insert(rng.random_range(0..n_cands));
                }
            }
            cfg
        })
        .collect()
}

/// Three-way measurement of joint (partitioned) configurations: exact
/// re-optimization vs per-design `Inum::cost` vs partition-aware matrix
/// lookups. The acceptance gate reads these rows from `BENCH_e4.json`
/// (matrix ≥ 5x the per-design INUM path, agreement within 1e-6).
fn measure_joint(
    inum: &Inum<'_>,
    matrix: &CostMatrix<'_>,
    workload: &Workload,
    configs: &[JointConfig],
    exact_configs: usize,
    name: &str,
) -> Row {
    let designs: Vec<_> = configs.iter().map(|c| matrix.joint_design_of(c)).collect();

    let t0 = Instant::now();
    let mut exact_calls = 0usize;
    for design in designs.iter().take(exact_configs) {
        for (q, _) in workload.iter() {
            std::hint::black_box(inum.exact_cost(design, q));
            exact_calls += 1;
        }
    }
    let exact = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut inum_total = 0.0;
    for design in &designs {
        for (q, w) in workload.iter() {
            inum_total += w * inum.cost(design, q);
        }
    }
    let fast = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let mut matrix_total = 0.0;
    for cfg in configs {
        matrix_total += matrix.joint_workload_cost(cfg);
    }
    let lookup = t2.elapsed().as_secs_f64();

    let calls = (configs.len() * workload.len()) as f64;
    Row {
        name: name.to_string(),
        exact_us: exact * 1e6 / exact_calls.max(1) as f64,
        inum_us: fast * 1e6 / calls,
        matrix_us: lookup * 1e6 / calls,
        agreement_err: (matrix_total - inum_total).abs() / inum_total.abs().max(1e-9),
    }
}

fn print_report() {
    let catalog = sdss_catalog(SCALE);
    let optimizer = Optimizer::new().with_control(JoinControl {
        nestloop: false,
        ..Default::default()
    });
    let inum = Inum::new(&catalog, &optimizer);
    let (n_configs, n_exact) = if test_mode() { (20, 3) } else { (200, 40) };

    let mut rows: Vec<Row> = Vec::new();
    println!("=== E4: matrix vs INUM vs re-optimization ({n_configs} configs per class) ===");
    println!(
        "{:<10} {:>13} {:>13} {:>14} {:>9} {:>9} {:>10}",
        "class",
        "full us/call",
        "inum us/call",
        "matrix us/call",
        "inum/ex",
        "mat/inum",
        "agreement"
    );
    let mut classes = workload_classes(&catalog);
    // The E2 offline-design workload: the perf-trajectory row the JSON
    // acceptance gate reads (matrix ≥ 10x the per-design INUM path).
    classes.push(("e2-offline", sdss_workload(&catalog, 27, 0xE2)));
    for (name, workload) in &classes {
        inum.prepare_workload(workload);
        let candidates = workload_candidates(&catalog, workload, &CandidateConfig::default());
        let matrix = CostMatrix::build(&inum, workload, &candidates.indexes);
        let configs = random_subsets(candidates.indexes.len(), n_configs, 1);
        // Warm both slow paths once (fair caches).
        let _ = measure(
            &inum,
            &matrix,
            workload,
            &configs[..5.min(configs.len())],
            1,
            name,
        );
        let row = measure(&inum, &matrix, workload, &configs, n_exact, name);
        println!(
            "{:<10} {:>13.2} {:>13.2} {:>14.3} {:>8.1}x {:>8.1}x {:>9.2e}",
            row.name,
            row.exact_us,
            row.inum_us,
            row.matrix_us,
            row.exact_us / row.inum_us.max(1e-9),
            row.inum_us / row.matrix_us.max(1e-9),
            row.agreement_err,
        );
        rows.push(row);
    }

    // Partition-costing rows: the same three-way comparison over joint
    // (vertically + horizontally partitioned, optionally indexed)
    // configurations — the second half of the paper's "extended the INUM
    // cost model to include partitions" claim.
    let part_workload = sdss_workload(&catalog, 18, 0xA127);
    inum.prepare_workload(&part_workload);
    let part_cands = workload_candidates(&catalog, &part_workload, &CandidateConfig::default());
    for (name, with_indexes) in [("partition", false), ("joint-index+part", true)] {
        let mut matrix = CostMatrix::build(&inum, &part_workload, &part_cands.indexes);
        let configs = random_joint_configs(&mut matrix, &catalog, n_configs, with_indexes, 3);
        // Warm once (fair caches), then measure.
        let _ = measure_joint(
            &inum,
            &matrix,
            &part_workload,
            &configs[..5.min(configs.len())],
            1,
            name,
        );
        let row = measure_joint(&inum, &matrix, &part_workload, &configs, n_exact, name);
        println!(
            "{:<10} {:>13.2} {:>13.2} {:>14.3} {:>8.1}x {:>8.1}x {:>9.2e}",
            row.name,
            row.exact_us,
            row.inum_us,
            row.matrix_us,
            row.exact_us / row.inum_us.max(1e-9),
            row.inum_us / row.matrix_us.max(1e-9),
            row.agreement_err,
        );
        rows.push(row);
    }

    let stats = inum.stats();
    let mstats = inum.matrix_stats();
    println!(
        "inum cache: {} skeletons for {} queries; {} cost calls served",
        stats.skeletons_built,
        inum.cached_queries(),
        stats.cost_calls
    );
    println!(
        "cost matrices: {} built ({} cells); {} lookups; ~{} optimizer calls avoided",
        mstats.builds,
        mstats.cells,
        mstats.lookups,
        mstats.whatif_calls_avoided()
    );

    if let Ok(path) = std::env::var("BENCH_E4_JSON") {
        let body: Vec<String> = rows.iter().map(Row::json).collect();
        let json = format!(
            "{{\n  \"experiment\": \"e4\",\n  \"scale\": {SCALE},\n  \
             \"configs_per_class\": {n_configs},\n  \"classes\": [\n{}\n  ],\n  \
             \"matrix_cells_precomputed\": {},\n  \"matrix_lookups\": {}\n}}\n",
            body.join(",\n"),
            mstats.cells,
            mstats.lookups,
        );
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

fn bench_paths(c: &mut Criterion) {
    print_report();
    let catalog = sdss_catalog(SCALE);
    let optimizer = Optimizer::new().with_control(JoinControl {
        nestloop: false,
        ..Default::default()
    });
    let inum = Inum::new(&catalog, &optimizer);
    let classes = workload_classes(&catalog);
    let (_, joins) = &classes[1];
    inum.prepare_workload(joins);
    let candidates = workload_candidates(&catalog, joins, &CandidateConfig::default());
    let matrix = CostMatrix::build(&inum, joins, &candidates.indexes);
    let configs = random_subsets(candidates.indexes.len(), 20, 2);
    let mut g = c.benchmark_group("e4");
    g.sample_size(10);
    g.bench_function("reoptimize_20_configs_joins", |b| {
        b.iter(|| {
            let mut t = 0.0;
            for ids in &configs {
                let design = matrix.design_of(&CandidateBitset::from_ids(
                    candidates.indexes.len(),
                    ids.iter().copied(),
                ));
                for (q, w) in joins.iter() {
                    t += w * inum.exact_cost(&design, q);
                }
            }
            t
        })
    });
    g.bench_function("inum_20_configs_joins", |b| {
        b.iter(|| {
            let mut t = 0.0;
            for ids in &configs {
                let design = matrix.design_of(&CandidateBitset::from_ids(
                    candidates.indexes.len(),
                    ids.iter().copied(),
                ));
                t += inum.workload_cost(&design, joins);
            }
            t
        })
    });
    g.bench_function("matrix_20_configs_joins", |b| {
        let mut scratch = CandidateBitset::new(candidates.indexes.len());
        b.iter(|| {
            let mut t = 0.0;
            for ids in &configs {
                scratch.clear();
                for &id in ids {
                    scratch.insert(id);
                }
                t += matrix.workload_cost(&scratch);
            }
            t
        })
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
