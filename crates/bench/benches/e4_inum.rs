//! E4 — the INUM claim (§1): caching "increase[s] the efficiency of the
//! selection tool by orders of magnitude".
//!
//! Costs many candidate configurations through (a) full re-optimization
//! and (b) the warm INUM cache. The speedup grows with the size of the
//! plan space the skeleton cache short-circuits, so the report breaks the
//! comparison down by join count. (The paper's own baseline is the
//! PostgreSQL planner, whose per-call overhead is far larger than this
//! simulator's — absolute ratios here are a lower bound on the effect.)

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign_bench::SCALE;
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::Catalog;
use pgdesign_inum::Inum;
use pgdesign_optimizer::{JoinControl, Optimizer};
use pgdesign_query::generators::sdss_template;
use pgdesign_query::{parse_query, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Random index configurations on the SDSS tables.
fn random_configs(catalog: &Catalog, n: usize, seed: u64) -> Vec<PhysicalDesign> {
    let photo = catalog.schema.table_by_name("photoobj").unwrap().id;
    let spec = catalog.schema.table_by_name("specobj").unwrap().id;
    let field = catalog.schema.table_by_name("field").unwrap().id;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut d = PhysicalDesign::empty();
            for _ in 0..rng.random_range(1..4) {
                let (t, width) = match rng.random_range(0..4) {
                    0 => (spec, 8u16),
                    1 => (field, 6u16),
                    _ => (photo, 16u16),
                };
                let n_cols = rng.random_range(1..3);
                let mut cols: Vec<u16> = (0..n_cols).map(|_| rng.random_range(0..width)).collect();
                cols.dedup();
                d.add_index(Index::new(t, cols));
            }
            d
        })
        .collect()
}

/// Workload classes by join count.
fn workload_classes(catalog: &Catalog) -> Vec<(&'static str, Workload)> {
    let mut rng = StdRng::seed_from_u64(0xE4);
    let single: Workload = (0..12)
        .map(|i| sdss_template(catalog, [0, 1, 2, 4, 7, 8][i % 6], &mut rng))
        .collect();
    let two: Workload = (0..12)
        .map(|i| sdss_template(catalog, [3, 5, 6][i % 3], &mut rng))
        .collect();
    let three: Workload = (0..6)
        .map(|i| {
            let run = 100 + i * 700;
            parse_query(
                &catalog.schema,
                &format!(
                    "SELECT p.objid, s.zredshift, f.quality FROM photoobj p, specobj s, field f \
                     WHERE p.objid = s.bestobjid AND p.run = f.run AND f.quality = 1 AND p.run = {run}"
                ),
            )
            .unwrap()
        })
        .collect();
    vec![("1-table", single), ("2-table", two), ("3-table", three)]
}

fn measure(inum: &Inum<'_>, workload: &Workload, configs: &[PhysicalDesign]) -> (f64, f64, f64) {
    // Full re-optimization.
    let t0 = Instant::now();
    let mut exact_total = 0.0;
    for d in configs {
        for (q, w) in workload.iter() {
            exact_total += w * inum.exact_cost(d, q);
        }
    }
    let exact = t0.elapsed().as_secs_f64();
    // Warm INUM.
    let t1 = Instant::now();
    let mut inum_total = 0.0;
    for d in configs {
        inum_total += inum.workload_cost(d, workload);
    }
    let fast = t1.elapsed().as_secs_f64();
    let disagreement = (inum_total - exact_total).abs() / exact_total.max(1e-9);
    (exact, fast, disagreement)
}

fn print_report() {
    let catalog = sdss_catalog(SCALE);
    let optimizer = Optimizer::new().with_control(JoinControl {
        nestloop: false,
        ..Default::default()
    });
    let inum = Inum::new(&catalog, &optimizer);
    let configs = random_configs(&catalog, 200, 1);

    println!("=== E4: INUM vs re-optimization (200 configs per class) ===");
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>12}",
        "class", "full us/call", "inum us/call", "speedup", "agreement"
    );
    for (name, workload) in workload_classes(&catalog) {
        inum.prepare_workload(&workload);
        // Warm both paths once (fair caches).
        let _ = measure(&inum, &workload, &configs[..5]);
        let (exact, fast, dis) = measure(&inum, &workload, &configs);
        let calls = (configs.len() * workload.len()) as f64;
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>8.1}x {:>11.3}%",
            name,
            exact * 1e6 / calls,
            fast * 1e6 / calls,
            exact / fast.max(1e-12),
            100.0 * dis
        );
    }
    let stats = inum.stats();
    println!(
        "inum cache: {} skeletons for {} queries; {} cost calls served",
        stats.skeletons_built,
        inum.cached_queries(),
        stats.cost_calls
    );
}

fn bench_paths(c: &mut Criterion) {
    print_report();
    let catalog = sdss_catalog(SCALE);
    let optimizer = Optimizer::new().with_control(JoinControl {
        nestloop: false,
        ..Default::default()
    });
    let inum = Inum::new(&catalog, &optimizer);
    let configs = random_configs(&catalog, 20, 2);
    let classes = workload_classes(&catalog);
    let (_, joins) = &classes[1];
    inum.prepare_workload(joins);
    let mut g = c.benchmark_group("e4");
    g.sample_size(10);
    g.bench_function("reoptimize_20_configs_joins", |b| {
        b.iter(|| {
            let mut t = 0.0;
            for d in &configs {
                for (q, w) in joins.iter() {
                    t += w * inum.exact_cost(d, q);
                }
            }
            t
        })
    });
    g.bench_function("inum_20_configs_joins", |b| {
        b.iter(|| {
            let mut t = 0.0;
            for d in &configs {
                t += inum.workload_cost(d, joins);
            }
            t
        })
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
