//! E5 — §3.5 claim: "an appropriately scheduled materialization of indexes
//! can lead to higher benefit in contrast with a schedule that does not
//! take into account index interaction".
//!
//! Prints the build-window area (workload cost accumulated while indexes
//! build) for naive / greedy / exact schedules over the E2 recommendation,
//! plus the benefit curves, then measures greedy scheduling time.

use criterion::{criterion_group, criterion_main, Criterion};
use pgdesign::Designer;
use pgdesign_bench::setup;
use pgdesign_interaction::{exact_schedule, greedy_schedule, naive_schedule};
use pgdesign_inum::Inum;

fn print_report() {
    let bench = setup(27, 0xE2); // same workload as E2
    let designer = Designer::new(bench.catalog.clone());
    let rec = designer.recommend(&bench.workload, designer.catalog.data_bytes() / 2);
    let indexes = rec.indexes.indexes.clone();
    let inum = Inum::new(&designer.catalog, &designer.optimizer);

    let naive = naive_schedule(&inum, &bench.workload, &indexes);
    let greedy = greedy_schedule(&inum, &bench.workload, &indexes);
    println!(
        "=== E5: materialization scheduling over {} suggested indexes ===",
        indexes.len()
    );
    println!("naive  (recommendation order): area {:>14.0}", naive.area);
    println!(
        "greedy (interaction-aware):    area {:>14.0}  ({:.1}% saved)",
        greedy.area,
        100.0 * (naive.area - greedy.area).max(0.0) / naive.area.max(1e-9)
    );
    if indexes.len() <= 10 {
        let exact = exact_schedule(&inum, &bench.workload, &indexes);
        println!(
            "exact  (DP optimum):           area {:>14.0}  ({:.1}% saved)",
            exact.area,
            100.0 * (naive.area - exact.area).max(0.0) / naive.area.max(1e-9)
        );
        println!(
            "greedy gap to optimum: {:.2}%",
            100.0 * (greedy.area - exact.area).max(0.0) / exact.area.max(1e-9)
        );
    }
    println!("--- benefit curves (cumulative build time -> workload cost) ---");
    let curve = |s: &pgdesign_interaction::Schedule| {
        s.curve
            .iter()
            .map(|(t, c)| format!("{t:.0}:{c:.0}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("naive : {}", curve(&naive));
    println!("greedy: {}", curve(&greedy));
}

fn bench_schedule(c: &mut Criterion) {
    print_report();
    let bench = setup(27, 0xE2);
    let designer = Designer::new(bench.catalog.clone());
    let rec = designer.recommend(&bench.workload, designer.catalog.data_bytes() / 2);
    let indexes = rec.indexes.indexes.clone();
    let inum = Inum::new(&designer.catalog, &designer.optimizer);
    inum.prepare_workload(&bench.workload);
    let mut g = c.benchmark_group("e5");
    g.sample_size(10);
    g.bench_function("greedy_schedule", |b| {
        b.iter(|| greedy_schedule(&inum, &bench.workload, &indexes))
    });
    if indexes.len() <= 10 {
        g.bench_function("exact_schedule_dp", |b| {
            b.iter(|| exact_schedule(&inum, &bench.workload, &indexes))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
