//! Seeded chaos schedules against the full online tuning daemon.
//!
//! Each schedule drives a real [`OnlineSession`] over a fault-injecting
//! [`SharedMemStore`] through a deterministic, seed-derived interleaving
//! of:
//!
//! * valid stream queries (the SDSS templates),
//! * hostile / unparseable SQL, which must come back as a `ParseError`,
//!   never a panic,
//! * durable-store failpoints (transient fsync, sticky fsync, short
//!   writes, mid-append crashes) with power-cut and byte-corruption
//!   restarts,
//! * mid-stream catalog drift via [`Catalog::update_table_stats`] — both
//!   valid updates and non-finite poison that must be rejected with the
//!   catalog left untouched, and
//! * epoch-deadline pressure on a manual clock, walking the tuner down
//!   its degradation ladder.
//!
//! Invariants checked on every schedule, beyond "nothing panics":
//!
//! 1. every cost served from a reader snapshot agrees within `1e-12`
//!    (relative) with a fresh serial rebuild of that generation's
//!    recorded (queries, candidates) state;
//! 2. a reader is never left without an answerable snapshot — after any
//!    fault, every active query still costs to a non-NaN value through
//!    the latest snapshot;
//! 3. [`OnlineSession::tuning_stats`] and [`OnlineSession::health`]
//!    always agree on the service-health verdict.
//!
//! Schedules are pure functions of their seed (manual clock, no wall
//! time, deterministic backoff), so any failure replays bit-identically
//! from the seed printed in the panic message.

use pgdesign::health::ManualClock;
use pgdesign::{Designer, OnlineSession, ServiceHealth};
use pgdesign_catalog::design::Index;
use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::{Catalog, CatalogError};
use pgdesign_colt::{ColtConfig, EpochMode};
use pgdesign_durability::{Failpoint, SharedMemStore};
use pgdesign_inum::{CostMatrix, Inum};
use pgdesign_query::ast::Query;
use pgdesign_query::generators::sdss_template;
use pgdesign_query::{parse_query, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Aggregated evidence from one schedule (or a sweep of them): how much
/// of the fault surface was actually exercised, and the worst observed
/// serving error. Everything is additive except `max_rel_err`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChaosOutcome {
    /// Schedules folded into this outcome.
    pub schedules: u64,
    /// Stream steps executed.
    pub steps: u64,
    /// Epoch boundaries crossed.
    pub epochs: u64,
    /// Epochs that closed below the `Full` rung of the ladder.
    pub degraded_epochs: u64,
    /// Hostile SQL inputs rejected with a typed parse error.
    pub hostile_rejected: u64,
    /// Store failpoints armed.
    pub faults_injected: u64,
    /// Durable bytes corrupted across restarts.
    pub corruptions: u64,
    /// Session restarts over the surviving store bytes.
    pub restarts: u64,
    /// Valid catalog drift updates applied mid-stream.
    pub drifts_applied: u64,
    /// Non-finite drift updates rejected (catalog verified unchanged).
    pub drifts_rejected: u64,
    /// Reader-availability probes (snapshot answered every active query).
    pub availability_checks: u64,
    /// Served costs verified against a fresh serial rebuild.
    pub lookups_verified: u64,
    /// Steps at which the daemon reported non-`Healthy` service health.
    pub degraded_observations: u64,
    /// Worst relative error between a served and a fresh-rebuilt cost.
    pub max_rel_err: f64,
}

impl ChaosOutcome {
    /// Fold another outcome into this one.
    pub fn absorb(&mut self, o: &ChaosOutcome) {
        self.schedules += o.schedules;
        self.steps += o.steps;
        self.epochs += o.epochs;
        self.degraded_epochs += o.degraded_epochs;
        self.hostile_rejected += o.hostile_rejected;
        self.faults_injected += o.faults_injected;
        self.corruptions += o.corruptions;
        self.restarts += o.restarts;
        self.drifts_applied += o.drifts_applied;
        self.drifts_rejected += o.drifts_rejected;
        self.availability_checks += o.availability_checks;
        self.lookups_verified += o.lookups_verified;
        self.degraded_observations += o.degraded_observations;
        self.max_rel_err = self.max_rel_err.max(o.max_rel_err);
    }
}

/// Malformed statements every schedule samples from. Each must produce a
/// `ParseError`; none may panic, hang, or reach the tuner.
const HOSTILE_SQL: &[&str] = &[
    "",
    ";",
    "SELECT",
    "SELECT FROM",
    "SELECT * FROM no_such_table",
    "SELECT ra FROM photoobj WHERE",
    "SELECT ra FROM photoobj WHERE objid =",
    "SELECT ra FROM photoobj WHERE objid = 'unterminated",
    "SELECT ra FROM photoobj WHERE objid BETWEEN 1",
    "SELECT ra FROM photoobj WHERE objid IN (",
    "SELECT ra FROM photoobj ORDER BY",
    "SELECT ra FROM photoobj LIMIT -3",
    "SELECT ??? FROM photoobj",
    "SELECT ra, FROM photoobj",
    "SELECT ra FROM photoobj trailing garbage tokens",
    "SELECT count(ra FROM photoobj",
    "SELECT ra FROM photoobj WHERE ra <> <> 1",
    "\u{0}\u{7} SELECT \u{1b}[2J",
];

/// Random near-SQL noise: ASCII soup with quotes, dots, digits and a few
/// non-ASCII code points, biased toward the lexer's edge cases.
fn garbage_sql(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'S', 'E', 'L', 'C', 'T', 'F', 'R', 'O', 'M', 'W', ' ', ' ', '*', '(', ')', '\'', '.', ',',
        '<', '>', '=', '-', '0', '9', 'e', '_', ';', '\n', '\t', '\u{0}', 'ß', '☃',
    ];
    let len = rng.random_range(0..48usize);
    (0..len)
        .map(|_| POOL[rng.random_range(0..POOL.len())])
        .collect()
}

/// Apply one valid drift update and one non-finite poison update to a
/// random table. The poison must be rejected with a typed error and must
/// leave the catalog bit-for-bit unchanged.
fn drift_catalog(catalog: &mut Catalog, rng: &mut StdRng, out: &mut ChaosOutcome) {
    let n_tables = catalog.schema.len();
    let tid = catalog
        .schema
        .tables()
        .nth(rng.random_range(0..n_tables))
        .expect("schema has tables")
        .id;

    // Valid drift: scale row count and per-column NDVs.
    let factor = 0.5 + rng.random_range(0..16u32) as f64 / 8.0;
    let mut drifted = catalog.table_stats(tid).clone();
    drifted.row_count = ((drifted.row_count as f64 * factor) as u64).max(1);
    for col in &mut drifted.columns {
        col.ndv = (col.ndv * factor).max(1.0);
    }
    catalog
        .update_table_stats(tid, drifted)
        .expect("finite drift must be accepted");
    out.drifts_applied += 1;

    // Poison drift: one non-finite field, rejected atomically.
    let rows_before = catalog.table_stats(tid).row_count;
    let ndv_before = catalog.table_stats(tid).columns.first().map(|c| c.ndv);
    let mut poison = catalog.table_stats(tid).clone();
    if let Some(col) = poison.columns.first_mut() {
        col.ndv = if rng.random_range(0..2) == 0 {
            f64::NAN
        } else {
            f64::INFINITY
        };
        match catalog.update_table_stats(tid, poison) {
            Err(CatalogError::NonFinite { field: "ndv", .. }) => {}
            other => panic!("poisoned stats must be rejected as NonFinite, got {other:?}"),
        }
        assert_eq!(
            catalog.table_stats(tid).row_count,
            rows_before,
            "rejected update mutated catalog"
        );
        assert_eq!(
            catalog.table_stats(tid).columns.first().map(|c| c.ndv),
            ndv_before
        );
        out.drifts_rejected += 1;
    }
}

/// Record the just-published generation from the writer matrix, sample a
/// few costs through a fresh reader snapshot, then rebuild that exact
/// state serially and require agreement within 1e-12 relative.
fn verify_served_costs(
    designer: &Designer,
    session: &mut OnlineSession<'_>,
    rng: &mut StdRng,
    out: &mut ChaosOutcome,
    seed: u64,
) {
    type ActiveRow = (usize, Query, f64);
    let (actives, cands): (Vec<ActiveRow>, Vec<(usize, Index)>) = {
        let m = session.session().matrix();
        (
            m.active_query_ids()
                .map(|qid| (qid, m.workload().query(qid).clone(), m.query_weight(qid)))
                .collect(),
            m.candidates().map(|(id, idx)| (id, idx.clone())).collect(),
        )
    };
    if actives.is_empty() {
        return;
    }
    let mut reader = session.reader();
    reader.refresh();
    let snap = reader.snapshot();

    let mut samples: Vec<(usize, Vec<usize>, f64)> = Vec::new();
    for _ in 0..3 {
        let (qid, _, _) = actives[rng.random_range(0..actives.len())];
        let ids: Vec<usize> = cands
            .iter()
            .map(|(id, _)| *id)
            .filter(|_| rng.random_range(0..2u32) == 0)
            .collect();
        let served = snap.cost(qid, &snap.config_of(ids.iter().copied()));
        samples.push((qid, ids, served));
    }

    let inum = Inum::new(&designer.catalog, &designer.optimizer);
    let mut w = Workload::new();
    for (_, q, wt) in &actives {
        w.push(q.clone(), *wt);
    }
    let fresh_cands: Vec<Index> = cands.iter().map(|(_, idx)| idx.clone()).collect();
    let fresh = CostMatrix::build_with_threads(&inum, &w, &fresh_cands, 1);
    let qpos: HashMap<usize, usize> = actives
        .iter()
        .enumerate()
        .map(|(p, (id, _, _))| (*id, p))
        .collect();
    let cpos: HashMap<usize, usize> = cands
        .iter()
        .enumerate()
        .map(|(p, (id, _))| (*id, p))
        .collect();
    for (qid, ids, served) in samples {
        let serial = fresh.cost(qpos[&qid], &fresh.config_of(ids.iter().map(|id| cpos[id])));
        let denom = serial.abs().max(1.0);
        let rel = (served - serial).abs() / denom;
        assert!(
            rel <= 1e-12,
            "schedule seed {seed}: served cost {served} disagrees with fresh rebuild {serial} \
             (rel {rel:.3e}, query {qid}, candidates {ids:?})"
        );
        out.max_rel_err = out.max_rel_err.max(rel);
        out.lookups_verified += 1;
    }
}

/// The reader-availability invariant: the latest snapshot must cost every
/// active query to a non-NaN value, no matter what just failed.
fn assert_snapshot_answerable(reader: &mut pgdesign::SessionReader, seed: u64) {
    reader.refresh();
    let snap = reader.snapshot();
    let cfg = snap.empty_config();
    for qid in snap.active_query_ids().collect::<Vec<_>>() {
        let c = snap.cost(qid, &cfg);
        assert!(
            !c.is_nan(),
            "schedule seed {seed}: snapshot served NaN for query {qid}"
        );
    }
}

/// One session lifetime within a schedule: open over the surviving store
/// bytes, stream with interleaved faults, optionally end on a hard store
/// fault. Returns whether the store needs a power cut before reopening.
#[allow(clippy::too_many_arguments)]
fn run_segment(
    designer: &Designer,
    store: &SharedMemStore,
    rng: &mut StdRng,
    out: &mut ChaosOutcome,
    seed: u64,
) -> bool {
    let config = ColtConfig {
        epoch_length: 4,
        whatif_budget_per_epoch: 40,
        ..ColtConfig::default()
    };
    let mut session = OnlineSession::open_or_create_on(designer, config, Box::new(store.clone()))
        .unwrap_or_else(|e| panic!("schedule seed {seed}: open over a healthy store failed: {e}"));

    // Half the segments run under deadline pressure on a manual clock
    // (sub-5ms budgets force the ladder; a 0ms budget forces `Stale`).
    let clock = Arc::new(ManualClock::new());
    let deadline = if rng.random_range(0..2u32) == 0 {
        Some(Duration::from_millis(rng.random_range(0..4u64)))
    } else {
        None
    };
    if let Some(d) = deadline {
        session.set_clock(clock.clone());
        session.set_epoch_deadline(Some(d));
    }

    let mut availability = session.reader();
    let target_epochs = 2 + rng.random_range(0..2u32);
    let mut epochs_seen = 0u32;
    let mut steps = 0u32;
    while epochs_seen < target_epochs && steps < 64 {
        steps += 1;
        out.steps += 1;
        match rng.random_range(0..8u32) {
            0 => {
                // Hostile input edge: parse must reject, never panic. A
                // garbage string that happens to parse is a valid query
                // and goes into the stream like any other.
                let sql = if rng.random_range(0..2u32) == 0 {
                    HOSTILE_SQL[rng.random_range(0..HOSTILE_SQL.len())].to_string()
                } else {
                    garbage_sql(rng)
                };
                match parse_query(&designer.catalog.schema, &sql) {
                    Err(_) => {
                        out.hostile_rejected += 1;
                        continue;
                    }
                    Ok(q) => {
                        let _ = session.observe(q);
                        continue;
                    }
                }
            }
            1 => {
                // Transient IO fault under the next epoch sync — bounded
                // retry must ride it out without suspending.
                store.lock().arm(Failpoint::TransientFsync {
                    times: 1 + rng.random_range(0..2usize),
                });
                out.faults_injected += 1;
            }
            _ => {}
        }
        if deadline.is_some() {
            clock.advance(Duration::from_millis(rng.random_range(0..3u64)));
        }
        let q = sdss_template(&designer.catalog, rng.random_range(0..9usize), rng);
        let boundary = session.observe(q).map(|r| r.mode);
        if let Some(mode) = boundary {
            epochs_seen += 1;
            out.epochs += 1;
            if mode != EpochMode::Full {
                out.degraded_epochs += 1;
            }
            // `Stale` published nothing, so the writer matrix is ahead of
            // the snapshot; only verify after an epoch that published.
            if mode != EpochMode::Stale && rng.random_range(0..2u32) == 0 {
                verify_served_costs(designer, &mut session, rng, out, seed);
            }
        }
        if rng.random_range(0..3u32) == 0 {
            assert_snapshot_answerable(&mut availability, seed);
            out.availability_checks += 1;
        }
        let stats = session.tuning_stats();
        assert_eq!(
            stats.health,
            session.health(),
            "schedule seed {seed}: stats/health disagree"
        );
        if stats.health != ServiceHealth::Healthy {
            out.degraded_observations += 1;
        }
    }

    // Finale (one in three segments): a hard store fault while the stream
    // keeps running. The daemon must degrade or suspend — and keep
    // serving reads — never panic. These faults down or poison the store,
    // so the caller power-cuts before the next open.
    let mut store_dirty = false;
    if rng.random_range(0..3u32) == 0 {
        let fp = match rng.random_range(0..3u32) {
            0 => Failpoint::ShortWrite {
                keep: rng.random_range(0..8usize),
            },
            1 => Failpoint::CrashAfterBytes {
                n: rng.random_range(4..96usize),
            },
            _ => Failpoint::FsyncError,
        };
        store.lock().arm(fp);
        store_dirty = true;
        out.faults_injected += 1;
        for _ in 0..5 {
            out.steps += 1;
            if deadline.is_some() {
                clock.advance(Duration::from_millis(1));
            }
            let q = sdss_template(&designer.catalog, rng.random_range(0..9usize), rng);
            if session.observe(q).is_some() {
                out.epochs += 1;
            }
            if session.health() != ServiceHealth::Healthy {
                out.degraded_observations += 1;
            }
        }
    }
    // Whatever just happened, the reader still has an answerable snapshot.
    assert_snapshot_answerable(&mut availability, seed);
    out.availability_checks += 1;
    store_dirty
}

/// Run one seeded schedule end to end. Panics (with the seed in the
/// message) on any invariant violation; returns the coverage outcome.
pub fn run_schedule(seed: u64) -> ChaosOutcome {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
    let mut out = ChaosOutcome {
        schedules: 1,
        ..ChaosOutcome::default()
    };
    let mut designer = Designer::new(sdss_catalog(0.004));
    let store = SharedMemStore::new();
    let mut store_dirty = false;
    let segments = 1 + rng.random_range(0..2usize);
    for seg in 0..segments {
        if seg > 0 {
            // The "kill": the previous session is gone; surviving bytes
            // (plus an optional torn tail and a flipped byte) are what
            // the restart finds. Catalog stats drift across the restart.
            out.restarts += 1;
            drift_catalog(&mut designer.catalog, &mut rng, &mut out);
            if store_dirty {
                let mut g = store.lock();
                g.power_cut(rng.random_range(0..32usize));
            } else if rng.random_range(0..2u32) == 0 {
                store.lock().power_cut(rng.random_range(0..32usize));
            }
            if rng.random_range(0..4u32) == 0 {
                let name =
                    ["matrix.pgds", "matrix.pgdl", "tuner.pgds"][rng.random_range(0..3usize)];
                store.lock().corrupt(name, rng.random_range(0..512usize));
                out.corruptions += 1;
            }
        }
        store_dirty = run_segment(&designer, &store, &mut rng, &mut out, seed);
    }
    out
}

/// Run `n` consecutive seeds starting at `first_seed`, spread over worker
/// threads (schedules are independent and deterministic per seed; sums
/// commute and `max_rel_err` is order-free, so the fold is deterministic).
pub fn run_schedules(first_seed: u64, n: usize) -> ChaosOutcome {
    let workers = std::thread::available_parallelism()
        .map_or(1, |c| c.get())
        .clamp(1, 8);
    let mut total = ChaosOutcome::default();
    std::thread::scope(|s| {
        let chunk = n.div_ceil(workers);
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                s.spawn(move || {
                    let mut acc = ChaosOutcome::default();
                    for i in lo..hi {
                        acc.absorb(&run_schedule(first_seed + i as u64));
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            total.absorb(&h.join().expect("chaos worker panicked"));
        }
    });
    total
}
