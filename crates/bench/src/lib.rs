//! Shared setup for the experiment benches (E1–E7).
//!
//! Each bench in `benches/` reproduces one experiment from DESIGN.md: it
//! first *prints* the rows/series the paper's demo would display, then
//! runs a Criterion measurement of the underlying operation. Absolute
//! numbers depend on this simulator substrate; the shapes (who wins, by
//! roughly what factor) are the reproduction targets recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod chaos;

use pgdesign_catalog::samples::sdss_catalog;
use pgdesign_catalog::Catalog;
use pgdesign_optimizer::{JoinControl, Optimizer};
use pgdesign_query::generators::sdss_workload;
use pgdesign_query::Workload;

/// Default SDSS scale for experiments (100k-row photoobj).
pub const SCALE: f64 = 0.01;

/// Catalog + optimizer + workload used by most experiments.
pub struct Bench {
    /// SDSS-like catalog.
    pub catalog: Catalog,
    /// Default optimizer.
    pub optimizer: Optimizer,
    /// NLJ-free optimizer (the INUM-comparable oracle).
    pub optimizer_no_nlj: Optimizer,
    /// The experiment workload.
    pub workload: Workload,
}

/// Standard setup: SDSS catalog at [`SCALE`], `n`-query workload.
pub fn setup(n_queries: usize, seed: u64) -> Bench {
    let catalog = sdss_catalog(SCALE);
    let workload = sdss_workload(&catalog, n_queries, seed);
    Bench {
        catalog,
        optimizer: Optimizer::new(),
        optimizer_no_nlj: Optimizer::new().with_control(JoinControl {
            nestloop: false,
            ..Default::default()
        }),
        workload,
    }
}

/// Format bytes as MiB for reports.
pub fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}
