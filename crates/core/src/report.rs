//! Textual rendering of recommendations — the stand-in for the demo's GUI
//! panels (Figure 3's "list of suggested partitions ... individual query
//! benefit and the average workload benefit").

use crate::designer::{JointReport, OfflineReport};
use crate::health::ServiceHealth;
use pgdesign_inum::{InumStats, MatrixStats};
use std::fmt;

/// Counters from both INUM cache levels, captured after a tuning run —
/// what `pgdesign recommend --stats` prints.
#[derive(Debug, Clone, Copy, Default)]
pub struct TuningStats {
    /// First level: skeleton cache.
    pub inum: InumStats,
    /// Second level: precomputed cost matrices.
    pub matrix: MatrixStats,
    /// Generation of the latest published reader snapshot (0 = the
    /// build-time snapshot; each advise/publish bumps it).
    pub published_generation: u64,
    /// Configuration-cost lookups served to concurrent snapshot readers
    /// (lock-free; not included in `matrix.lookups`).
    pub reader_lookups: u64,
    /// What recovery did at session open — `Some` only for sessions opened
    /// through a durable entry point (`TuningSession::open_or_create` and
    /// friends).
    pub recovery: Option<RecoveryStats>,
    /// The daemon's current service state (worst of the tuner's epoch
    /// ladder and the durable log's condition).
    pub health: ServiceHealth,
    /// Consecutive epochs that published nothing: how many generations
    /// behind the stream concurrent readers currently are. Reset to zero
    /// by any publish.
    pub stale_generations: u64,
    /// Transient durable-I/O retries that succeeded (session lifetime).
    pub io_retries: u64,
    /// Times the edit log suspended until a checkpoint (retry budget
    /// exhausted or an unretryable append error).
    pub io_suspensions: u64,
}

/// Why a durable session open fell back to a cold matrix build instead of
/// a warm restore. Recovery *degrades, never fails*: every variant here
/// means "started like a non-durable session", not an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColdStart {
    /// No snapshot on disk — first run against this state directory.
    NoState,
    /// The snapshot failed its magic/CRC/payload checks.
    SnapshotCorrupt,
    /// The snapshot was written by a different format version.
    VersionSkew,
    /// The catalog changed shape (table count) since the snapshot.
    CatalogChanged,
}

impl fmt::Display for ColdStart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ColdStart::NoState => "no durable state found",
            ColdStart::SnapshotCorrupt => "snapshot failed verification",
            ColdStart::VersionSkew => "snapshot format version mismatch",
            ColdStart::CatalogChanged => "catalog shape changed",
        })
    }
}

/// What recovery did when a durable session opened: how much resident
/// state the warm restart recovered, and what it had to drop or redo.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Matrix cells adopted straight from the snapshot file.
    pub snapshot_cells_loaded: u64,
    /// Edit-log records replayed on top of the snapshot.
    pub log_records_replayed: u64,
    /// Log records dropped at a torn/corrupt tail (CRC or decode failure).
    pub log_records_dropped: u64,
    /// Cells recomputed because their table's catalog statistics changed
    /// since the snapshot was written.
    pub cells_invalidated_stale: u64,
    /// `Some(reason)` when the open fell back to a cold build.
    pub cold_start: Option<ColdStart>,
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cold_start {
            Some(reason) => writeln!(f, "   recovery: cold start ({reason})"),
            None => {
                writeln!(
                    f,
                    "   recovery: {} snapshot cells loaded, {} log records replayed \
                     ({} dropped at torn tail)",
                    self.snapshot_cells_loaded, self.log_records_replayed, self.log_records_dropped
                )?;
                writeln!(
                    f,
                    "   recovery: {} cells invalidated by catalog staleness",
                    self.cells_invalidated_stale
                )
            }
        }
    }
}

impl fmt::Display for TuningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- INUM / cost-matrix statistics --")?;
        writeln!(
            f,
            "   skeleton cache: {} cost calls ({} hits / {} misses, {} skeletons built)",
            self.inum.cost_calls,
            self.inum.cache_hits,
            self.inum.cache_misses,
            self.inum.skeletons_built
        )?;
        writeln!(
            f,
            "   cost matrices:  {} built ({} cells computed, {} cells reused, {} partition cells)",
            self.matrix.builds,
            self.matrix.cells,
            self.matrix.cells_reused,
            self.matrix.partition_cells
        )?;
        writeln!(
            f,
            "   matrix build time: {:.1} ms (cold builds + incremental updates)",
            self.matrix.build_nanos as f64 / 1e6
        )?;
        writeln!(
            f,
            "   matrix lookups: {} ({} partition-aware)",
            self.matrix.lookups, self.matrix.partition_lookups
        )?;
        writeln!(
            f,
            "   published snapshot: generation {} ({} reader lookups served)",
            self.published_generation, self.reader_lookups
        )?;
        writeln!(
            f,
            "   estimated what-if optimizer calls avoided: {}",
            self.matrix.whatif_calls_avoided()
        )?;
        writeln!(
            f,
            "   health: {} ({} stale generations, {} io retries, {} log suspensions)",
            self.health, self.stale_generations, self.io_retries, self.io_suspensions
        )?;
        if let Some(recovery) = &self.recovery {
            write!(f, "{recovery}")?;
        }
        Ok(())
    }
}

/// Render the joint index + partition report (called from `JointReport`'s
/// `Display`).
pub fn render_joint(r: &JointReport, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let j = &r.joint;
    writeln!(
        f,
        "================ Joint index + partition recommendation ================"
    )?;
    writeln!(
        f,
        "Workload cost: {:.1} -> {:.1} (indexes alone {:.1})   Average workload benefit: {:.1}%",
        j.base_cost,
        j.cost,
        j.index_cost,
        100.0 * j.average_benefit()
    )?;
    writeln!(f)?;
    writeln!(f, "-- Suggested indexes ({}) --", j.indexes.len())?;
    writeln!(
        f,
        "   (storage: {:.1} MiB indexes + {:.1} MiB replicated fragments)",
        j.total_index_bytes as f64 / (1024.0 * 1024.0),
        j.replication_bytes as f64 / (1024.0 * 1024.0)
    )?;
    for (i, name) in r.index_display.iter().enumerate() {
        writeln!(f, "   [{}] {}", i + 1, name)?;
    }
    writeln!(f)?;
    writeln!(
        f,
        "-- Suggested partitions ({} merge iterations) --",
        j.partition_iterations
    )?;
    let verticals: Vec<_> = j.design.verticals().collect();
    let horizontals: Vec<_> = j.design.horizontals().collect();
    if verticals.is_empty() && horizontals.is_empty() {
        writeln!(f, "   (none beneficial)")?;
    }
    for vp in verticals {
        writeln!(
            f,
            "   table {:?}: {} vertical fragment(s)",
            vp.table,
            vp.groups.len()
        )?;
    }
    for hp in horizontals {
        writeln!(
            f,
            "   table {:?}: {} range partition(s) on column {}",
            hp.table,
            hp.partitions(),
            hp.column
        )?;
    }
    writeln!(f)?;
    writeln!(f, "-- Benefit per query --")?;
    for (i, (base, tuned)) in j.per_query.iter().enumerate() {
        let pct = if *base > 0.0 {
            100.0 * (base - tuned).max(0.0) / base
        } else {
            0.0
        };
        writeln!(
            f,
            "   Q{:<3} {:>12.1} -> {:>12.1}   ({pct:>5.1}%)",
            i + 1,
            base,
            tuned
        )?;
    }
    Ok(())
}

/// Render the scenario-2 report (called from `OfflineReport`'s `Display`).
pub fn render_offline(r: &OfflineReport, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    writeln!(
        f,
        "==================== Physical design recommendation ===================="
    )?;
    writeln!(
        f,
        "Workload cost: {:.1} -> {:.1}   Average workload benefit: {:.1}%",
        r.base_cost,
        r.combined_cost,
        100.0 * r.average_benefit()
    )?;
    writeln!(f)?;

    writeln!(f, "-- Suggested indexes ({}) --", r.indexes.indexes.len())?;
    writeln!(
        f,
        "   (storage: {:.1} MiB, solver gap: {:.2}%, status: {:?})",
        r.indexes.total_index_bytes as f64 / (1024.0 * 1024.0),
        100.0 * r.indexes.gap,
        r.indexes.status
    )?;
    for (i, name) in r.index_display.iter().enumerate() {
        writeln!(f, "   [{}] {}", i + 1, name)?;
    }
    writeln!(f)?;

    writeln!(f, "-- Suggested partitions --")?;
    let verticals: Vec<_> = r.partitions.design.verticals().collect();
    let horizontals: Vec<_> = r.partitions.design.horizontals().collect();
    if verticals.is_empty() && horizontals.is_empty() {
        writeln!(f, "   (none beneficial)")?;
    }
    for vp in verticals {
        writeln!(
            f,
            "   table {:?}: {} vertical fragment(s)",
            vp.table,
            vp.groups.len()
        )?;
    }
    for hp in horizontals {
        writeln!(
            f,
            "   table {:?}: {} range partition(s) on column {}",
            hp.table,
            hp.partitions(),
            hp.column
        )?;
    }
    writeln!(f)?;

    writeln!(f, "-- Benefit per query --")?;
    for (i, (base, tuned)) in r.per_query.iter().enumerate() {
        let pct = if *base > 0.0 {
            100.0 * (base - tuned).max(0.0) / base
        } else {
            0.0
        };
        writeln!(
            f,
            "   Q{:<3} {:>12.1} -> {:>12.1}   ({pct:>5.1}%)",
            i + 1,
            base,
            tuned
        )?;
    }
    writeln!(f)?;

    writeln!(
        f,
        "-- Index interactions: {} pair(s) above threshold --",
        r.graph.edge_count()
    )?;
    for (i, j, w) in r.graph.top_edges(5) {
        writeln!(f, "   doi(#{}, #{}) = {:.4}", i + 1, j + 1, w)?;
    }
    writeln!(f)?;

    writeln!(f, "-- Materialization schedule --")?;
    writeln!(
        f,
        "   interaction-aware order: {:?}   (area {:.1})",
        r.schedule.order.iter().map(|i| i + 1).collect::<Vec<_>>(),
        r.schedule.area
    )?;
    writeln!(
        f,
        "   naive order:             {:?}   (area {:.1})",
        r.naive_schedule
            .order
            .iter()
            .map(|i| i + 1)
            .collect::<Vec<_>>(),
        r.naive_schedule.area
    )?;
    if r.naive_schedule.area > 0.0 {
        writeln!(
            f,
            "   area saved by scheduling: {:.1}%",
            100.0 * (r.naive_schedule.area - r.schedule.area).max(0.0) / r.naive_schedule.area
        )?;
    }
    Ok(())
}
