//! # pgdesign
//!
//! **An automated, yet interactive and portable DB designer** — a Rust
//! reproduction of the SIGMOD 2010 demonstration by Alagiannis, Dash,
//! Schnaitter, Ailamaki and Polyzotis.
//!
//! The toolkit suggests physical designs (indexes and partitions) for both
//! offline and online workloads, on top of a built-in what-if cost-based
//! optimizer. It integrates:
//!
//! * **CoPhy** — index selection as a combinatorial optimization problem
//!   with certified optimality gaps ([`pgdesign_cophy`]);
//! * **AutoPart** — vertical/horizontal partition suggestion
//!   ([`pgdesign_autopart`]);
//! * **COLT** — continuous on-line tuning of single-column indexes
//!   ([`pgdesign_colt`]);
//! * **INUM** — the cache-based cost model that makes thousands of what-if
//!   calls affordable ([`pgdesign_inum`]);
//! * **Index interactions** — degree-of-interaction analysis, the Figure-2
//!   interaction graph, and interaction-aware materialization scheduling
//!   ([`pgdesign_interaction`]).
//!
//! The portability claim of the paper — "the tool is designed so that it
//! can be ported to any relational DBMS, which offers a query optimizer, a
//! way to extract and create statistics, and control over join operations"
//! — maps to this crate's seams: a [`pgdesign_catalog::Catalog`] supplies
//! schema + statistics, a [`pgdesign_optimizer::Optimizer`] supplies
//! costing with join-method control, and everything above is engine-
//! agnostic.
//!
//! ## Quick start
//!
//! ```
//! use pgdesign::Designer;
//! use pgdesign_catalog::samples::sdss_catalog;
//! use pgdesign_query::generators::sdss_workload;
//!
//! let catalog = sdss_catalog(0.01);               // SDSS-like, 100k objects
//! let workload = sdss_workload(&catalog, 9, 42);  // 9 queries
//! let designer = Designer::new(catalog);
//!
//! // Scenario 2: automatic design. Budget: half the data size.
//! let budget = designer.catalog.data_bytes() / 2;
//! let report = designer.recommend(&workload, budget);
//! assert!(report.combined_cost <= report.base_cost);
//! println!("{report}");
//! ```
//!
//! ## One session, one matrix
//!
//! All three modes run on one substrate: a [`TuningSession`] owning a
//! single persistent, incrementally-maintained cost matrix, with every
//! design search expressed as an [`Advisor`] against it.
//! [`InteractiveSession`] is a session view whose evaluations are pure
//! matrix lookups; [`OnlineSession`] rotates COLT's epochs through the
//! session matrix and hands the warm cells to any advisor asked for
//! mid-stream ([`OnlineSession::advise`]); the `recommend_*` methods
//! above are one-shot session wrappers. See [`session`] for the
//! matrix-sharing contract. For concurrent what-if serving,
//! [`TuningSession::reader`] hands out [`SessionReader`]s — cheap
//! `Clone + Send` handles costing configurations lock-free against the
//! latest published snapshot while the session keeps mutating.
//!
//! ```
//! use pgdesign::{Designer, IndexAdvisor, PartitionAdvisor};
//! use pgdesign_catalog::samples::sdss_catalog;
//! use pgdesign_query::generators::sdss_workload;
//!
//! let catalog = sdss_catalog(0.005);
//! let workload = sdss_workload(&catalog, 5, 7);
//! let designer = Designer::new(catalog);
//! let mut session = designer.tuning_session(workload);
//! let indexes = session.advise(&mut IndexAdvisor::default());
//! let partitions = session.advise(&mut PartitionAdvisor::default()); // same matrix, warm cells
//! assert!(indexes.cost <= indexes.base_cost);
//! assert!(partitions.cost <= partitions.base_cost + 1e-6);
//! assert_eq!(session.stats().matrix.builds, 1);
//! ```

pub mod designer;
mod durable;
pub mod health;
pub mod interactive;
pub mod online;
pub mod report;
pub mod session;

pub use designer::{Designer, JointReport, OfflineReport};
pub use health::{DegradeReason, ServiceHealth};
pub use interactive::{BenefitReport, InteractiveSession};
pub use online::OnlineSession;
pub use report::{ColdStart, RecoveryStats, TuningStats};
pub use session::{
    Advisor, IndexAdvisor, InteractionAdvisor, JointAdvisor, OfflineAdvisor, PartitionAdvisor,
    SessionReader, TuningSession,
};

// Re-export the component crates under one roof.
pub use pgdesign_autopart as autopart;
pub use pgdesign_catalog as catalog;
pub use pgdesign_colt as colt;
pub use pgdesign_cophy as cophy;
pub use pgdesign_interaction as interaction;
pub use pgdesign_inum as inum;
pub use pgdesign_optimizer as optimizer;
pub use pgdesign_query as query;
pub use pgdesign_solver as solver;
