//! # pgdesign
//!
//! **An automated, yet interactive and portable DB designer** — a Rust
//! reproduction of the SIGMOD 2010 demonstration by Alagiannis, Dash,
//! Schnaitter, Ailamaki and Polyzotis.
//!
//! The toolkit suggests physical designs (indexes and partitions) for both
//! offline and online workloads, on top of a built-in what-if cost-based
//! optimizer. It integrates:
//!
//! * **CoPhy** — index selection as a combinatorial optimization problem
//!   with certified optimality gaps ([`pgdesign_cophy`]);
//! * **AutoPart** — vertical/horizontal partition suggestion
//!   ([`pgdesign_autopart`]);
//! * **COLT** — continuous on-line tuning of single-column indexes
//!   ([`pgdesign_colt`]);
//! * **INUM** — the cache-based cost model that makes thousands of what-if
//!   calls affordable ([`pgdesign_inum`]);
//! * **Index interactions** — degree-of-interaction analysis, the Figure-2
//!   interaction graph, and interaction-aware materialization scheduling
//!   ([`pgdesign_interaction`]).
//!
//! The portability claim of the paper — "the tool is designed so that it
//! can be ported to any relational DBMS, which offers a query optimizer, a
//! way to extract and create statistics, and control over join operations"
//! — maps to this crate's seams: a [`pgdesign_catalog::Catalog`] supplies
//! schema + statistics, a [`pgdesign_optimizer::Optimizer`] supplies
//! costing with join-method control, and everything above is engine-
//! agnostic.
//!
//! ## Quick start
//!
//! ```
//! use pgdesign::Designer;
//! use pgdesign_catalog::samples::sdss_catalog;
//! use pgdesign_query::generators::sdss_workload;
//!
//! let catalog = sdss_catalog(0.01);               // SDSS-like, 100k objects
//! let workload = sdss_workload(&catalog, 9, 42);  // 9 queries
//! let designer = Designer::new(catalog);
//!
//! // Scenario 2: automatic design. Budget: half the data size.
//! let budget = designer.catalog.data_bytes() / 2;
//! let report = designer.recommend(&workload, budget);
//! assert!(report.combined_cost <= report.base_cost);
//! println!("{report}");
//! ```

pub mod designer;
pub mod interactive;
pub mod online;
pub mod report;

pub use designer::{Designer, JointReport, OfflineReport};
pub use interactive::{BenefitReport, InteractiveSession};
pub use online::OnlineSession;
pub use report::TuningStats;

// Re-export the component crates under one roof.
pub use pgdesign_autopart as autopart;
pub use pgdesign_catalog as catalog;
pub use pgdesign_colt as colt;
pub use pgdesign_cophy as cophy;
pub use pgdesign_interaction as interaction;
pub use pgdesign_inum as inum;
pub use pgdesign_optimizer as optimizer;
pub use pgdesign_query as query;
pub use pgdesign_solver as solver;
