//! The [`TuningSession`] — **one persistent cost matrix behind every mode
//! of the tool**, and the [`Advisor`] trait every design search implements
//! against it.
//!
//! The paper's headline is that offline (CoPhy/AutoPart), online (COLT)
//! and interactive design are *one tool behind one what-if interface*.
//! This module is that interface's spine: a session owns a single
//! [`Inum`] (the skeleton cache) and a single incrementally-maintained
//! [`CostMatrix`] (the precomputed cell cache), and every consumer — the
//! interactive what-if view ([`crate::InteractiveSession`]), the
//! continuous tuner ([`crate::OnlineSession`]), and the offline advisors
//! behind [`crate::Designer::recommend`] and friends — extends and reads
//! that one matrix. Work done by one consumer is warm for the next: the
//! cells COLT computes while profiling an epoch are exactly the cells an
//! offline recommendation asked for mid-stream would otherwise recompute
//! (the session's [`TuningStats`] report the reuse as
//! `matrix.cells_reused`).

use crate::designer::Designer;
use crate::durable::{try_restore, DurableHandle};
use crate::report::TuningStats;
use pgdesign_durability::{DurableStore, FsStore};
use pgdesign_inum::{encode_published, CostMatrix, Inum, MatrixReader, MatrixSnapshot};
use pgdesign_query::Workload;
use std::collections::HashMap as StdHashMap;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// A tuning session: one [`Inum`] skeleton cache plus one persistent,
/// incrementally-maintained [`CostMatrix`], shared by every advisor and
/// view attached to it.
///
/// Created via [`Designer::tuning_session`] (or implicitly by
/// [`Designer::session`] / [`Designer::online_session`] and the
/// `recommend_*` wrappers). The session's matrix is never rebuilt:
/// advisors register candidates with [`CostMatrix::add_candidate`] /
/// [`CostMatrix::register_fragment`] / [`CostMatrix::register_split`]
/// (already-resident entries reuse their cells), and streaming consumers
/// rotate queries with [`CostMatrix::add_queries`] /
/// [`CostMatrix::retire_query`].
pub struct TuningSession<'a> {
    designer: &'a Designer,
    // NOTE: declared before `_inum` so the matrix (which borrows the boxed
    // INUM) is dropped first.
    matrix: CostMatrix<'a>,
    // Keeps the INUM alive (and heap-pinned) for the session's lifetime.
    _inum: Box<Inum<'a>>,
    /// Durable snapshot + edit-log state; `None` for in-memory sessions.
    durable: Option<DurableHandle>,
}

impl<'a> TuningSession<'a> {
    /// Start a session over a workload: builds the skeleton cache for the
    /// workload (the one-off warm-up) and a candidate-less cost matrix
    /// over it. Everything after this is incremental.
    pub fn new(designer: &'a Designer, workload: Workload) -> Self {
        let inum = Box::new(Inum::new(&designer.catalog, &designer.optimizer));
        // SAFETY: the matrix's reference points into the boxed INUM, whose
        // heap location is stable across moves of `TuningSession`. The box
        // is stored in `_inum`, declared *after* `matrix`, so the matrix
        // is dropped first; nothing handed out by the session borrows the
        // INUM beyond `&self` of this session.
        let inum_ref: &'a Inum<'a> = unsafe { &*(inum.as_ref() as *const Inum<'a>) };
        inum_ref.prepare_workload(&workload);
        let matrix = CostMatrix::build(inum_ref, &workload, &[]);
        TuningSession {
            designer,
            matrix,
            _inum: inum,
            durable: None,
        }
    }

    /// Open a durable session backed by the state directory at `dir`
    /// (created if absent), or create a fresh one when no usable state
    /// exists. See [`Self::open_or_create_on`] for the recovery contract.
    pub fn open_or_create(
        designer: &'a Designer,
        workload: Workload,
        dir: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let store = FsStore::open(dir.as_ref())?;
        Self::open_or_create_on(designer, workload, Box::new(store))
    }

    /// Open a durable session against any [`DurableStore`] (the
    /// fault-injection tests pass a `MemStore`).
    ///
    /// Warm path: the snapshot is decoded and verified, catalog-stale
    /// cells are recomputed, the edit log replays on top (torn tail
    /// dropped at the last CRC-valid record), and the requested `workload`
    /// is reconciled against the resident queries — recurring queries
    /// reuse their cells, no matrix build happens. Cold path (no state,
    /// corrupt or version-skewed snapshot, changed catalog shape): exactly
    /// [`Self::new`], with the reason recorded in the session's
    /// [`TuningStats::recovery`]. Either way the session checkpoints
    /// immediately, so the next open never re-pays this one's recovery,
    /// and every later mutation is journaled to the edit log at publish
    /// boundaries ([`Self::sync_durable`]).
    ///
    /// Only real I/O failure (an unreadable/unwritable store) returns
    /// `Err`; corrupt state never does.
    pub fn open_or_create_on(
        designer: &'a Designer,
        workload: Workload,
        mut store: Box<dyn DurableStore>,
    ) -> io::Result<Self> {
        let inum = Box::new(Inum::new(&designer.catalog, &designer.optimizer));
        // SAFETY: same invariant as `new` — the matrix's reference points
        // into the boxed INUM, whose heap location is stable and which is
        // dropped after the matrix.
        let inum_ref: &'a Inum<'a> = unsafe { &*(inum.as_ref() as *const Inum<'a>) };

        let (restored, recovery) = try_restore(inum_ref, &mut *store)?;
        let (matrix, pending) = match restored {
            Some((mut matrix, mut pending)) => {
                if !workload.is_empty() {
                    // Reconcile the requested workload against the resident
                    // queries: recurring queries keep their cells (weights
                    // forced to the request, not summed), residents not
                    // requested are retired. Published so the reconciled
                    // state is what the open-time checkpoint captures.
                    let entries: Vec<_> = workload
                        .entries
                        .iter()
                        .map(|e| (&e.query, e.weight))
                        .collect();
                    let ids = matrix.add_queries(entries.iter().map(|&(q, w)| (q, w)));
                    let mut want: StdHashMap<usize, f64> = StdHashMap::new();
                    for (&(_, w), &id) in entries.iter().zip(&ids) {
                        *want.entry(id).or_insert(0.0) += w;
                    }
                    let resident: Vec<usize> = matrix.active_query_ids().collect();
                    for id in resident {
                        match want.get(&id) {
                            Some(&w) => matrix.set_query_weight(id, w),
                            None => matrix.retire_query(id),
                        }
                    }
                    matrix.publish();
                    pending.clear();
                }
                (matrix, pending)
            }
            None => {
                inum_ref.prepare_workload(&workload);
                (CostMatrix::build(inum_ref, &workload, &[]), Vec::new())
            }
        };

        let mut session = TuningSession {
            designer,
            matrix,
            _inum: inum,
            durable: Some(DurableHandle::new(store, pending, recovery)),
        };
        // Fold whatever this open did (restore + replay, reconciliation,
        // or a cold build) into a fresh snapshot, then start journaling.
        session.checkpoint()?;
        session.matrix.enable_journal();
        Ok(session)
    }

    /// Whether this session persists its matrix to a durable store.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Drain the matrix's edit journal to the durable log (fsync per
    /// record) and checkpoint if enough publishes accumulated. No-op for
    /// in-memory sessions. Called automatically by [`Self::advise`] and
    /// [`Self::publish`]; call it manually after direct
    /// [`Self::matrix_mut`] edits worth persisting early.
    ///
    /// A failed append degrades to suspended logging (never a log with a
    /// hole) until a checkpoint heals it; a failed checkpoint leaves the
    /// previous on-disk state intact.
    pub fn sync_durable(&mut self) -> io::Result<()> {
        if self.durable.is_none() {
            return Ok(());
        }
        let edits = self.matrix.take_journal();
        let handle = self.durable.as_mut().expect("checked above");
        if handle.append_edits(&edits) {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Write the latest *published* matrix generation as a fresh snapshot
    /// and truncate the edit log against it. No-op for in-memory sessions.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let Some(handle) = self.durable.as_mut() else {
            return Ok(());
        };
        let records = encode_published(&self.matrix);
        handle.checkpoint(&records)
    }

    /// [`Self::sync_durable`], with I/O failure reported to stderr instead
    /// of returned — the shape internal callers want: durability already
    /// degrades gracefully, so a sync failure must not abort tuning.
    fn sync_durable_logged(&mut self) {
        if let Err(e) = self.sync_durable() {
            eprintln!("pgdesign: durable sync failed ({e}); continuing in memory");
        }
    }

    /// The designer (catalog + optimizer) this session runs against.
    pub fn designer(&self) -> &'a Designer {
        self.designer
    }

    /// The session's INUM handle with the session-internal (stretched)
    /// lifetime — needed to construct components that borrow the INUM and
    /// are used strictly within, or stored alongside, the session (the
    /// built-in advisors, [`crate::OnlineSession`]'s tuner).
    ///
    /// Deliberately `pub(crate)`: the returned reference is only valid
    /// while `self` is alive (the boxed INUM drops with the session), so
    /// handing it to arbitrary safe code would be unsound. External
    /// [`Advisor`] implementations should work through
    /// [`Self::matrix`]/[`Self::matrix_mut`], whose INUM accessor is tied
    /// to the matrix borrow.
    pub(crate) fn inum_longlived(&self) -> &'a Inum<'a> {
        // SAFETY: same invariant as `new` — the box's heap location is
        // stable and outlives every use reachable from this crate (all
        // callers drop the reference no later than the session).
        unsafe { &*(self._inum.as_ref() as *const Inum<'a>) }
    }

    /// The session's persistent cost matrix.
    pub fn matrix(&self) -> &CostMatrix<'a> {
        &self.matrix
    }

    /// Mutable access to the session matrix — how advisors register
    /// candidates and streaming consumers rotate queries.
    pub fn matrix_mut(&mut self) -> &mut CostMatrix<'a> {
        &mut self.matrix
    }

    /// The matrix's query mirror (entries of retired slots are stale; see
    /// [`CostMatrix::workload`]).
    pub fn workload(&self) -> &Workload {
        self.matrix.workload()
    }

    /// Counters from both cache levels — one persistent matrix means the
    /// `cells_reused` line here measures cross-consumer sharing, e.g. an
    /// offline recommendation reusing the cells an online run kept warm.
    pub fn stats(&self) -> TuningStats {
        let (io_retries, recent_retries, io_suspensions) =
            self.durable.as_ref().map_or((0, 0, 0), |d| d.io_counters());
        let health = match self.durable.as_ref() {
            Some(d) if d.is_suspended() => crate::health::ServiceHealth::Suspended,
            _ if recent_retries > 0 => {
                crate::health::ServiceHealth::Degraded(crate::health::DegradeReason::IoRetries)
            }
            _ => crate::health::ServiceHealth::Healthy,
        };
        TuningStats {
            inum: self._inum.stats(),
            matrix: self._inum.matrix_stats(),
            published_generation: self.matrix.published_generation(),
            reader_lookups: self.matrix.reader_lookups(),
            recovery: self.durable.as_ref().map(|d| d.recovery),
            health,
            stale_generations: 0,
            io_retries,
            io_suspensions,
        }
    }

    /// The session-level service health (durable-log condition only; an
    /// [`crate::OnlineSession`] additionally folds in the tuner's epoch
    /// ladder — see [`crate::OnlineSession::health`]).
    pub fn health(&self) -> crate::health::ServiceHealth {
        self.stats().health
    }

    /// Read an auxiliary ("sidecar") snapshot beside the matrix state —
    /// `None` on in-memory sessions and for missing/corrupt/skewed files.
    pub(crate) fn read_sidecar(&mut self, name: &str) -> Option<Vec<u8>> {
        self.durable.as_mut()?.read_sidecar(name)
    }

    /// Write an auxiliary sidecar snapshot (no-op on in-memory sessions).
    pub(crate) fn write_sidecar(&mut self, name: &str, payload: &[u8]) -> io::Result<()> {
        match self.durable.as_mut() {
            Some(d) => d.write_sidecar(name, payload),
            None => Ok(()),
        }
    }

    /// A concurrent reader over the latest *published* snapshot of the
    /// session matrix: cheap to create, [`Clone`] + [`Send`] + `'static`,
    /// and every lookup on it is lock-free against a pinned generation.
    /// Hand clones to N threads to serve what-if evaluations while this
    /// session keeps mutating the write side; see [`SessionReader`] for
    /// the staleness contract.
    pub fn reader(&self) -> SessionReader {
        SessionReader {
            reader: self.matrix.reader(),
        }
    }

    /// Publish the matrix's current state as a new snapshot generation for
    /// concurrent readers. [`Self::advise`] publishes automatically after
    /// each advisor; call this after manual [`Self::matrix_mut`] edits
    /// that readers should observe. Returns the new generation.
    pub fn publish(&mut self) -> u64 {
        let generation = self.matrix.publish();
        self.sync_durable_logged();
        generation
    }

    /// Run an advisor against this session (see [`Advisor`]).
    ///
    /// Publishes a fresh reader snapshot on completion: whatever the
    /// advisor registered or rotated becomes visible to
    /// [`Self::reader`] handles as the next generation. Durable sessions
    /// sync the journaled edits to the log at the same boundary.
    pub fn advise<A: Advisor + ?Sized>(&mut self, advisor: &mut A) -> A::Report {
        let report = advisor.advise(self);
        self.matrix.publish();
        self.sync_durable_logged();
        report
    }
}

/// A cheap, cloneable, thread-safe handle serving what-if evaluations from
/// the latest snapshot a [`TuningSession`] published.
///
/// Dereferences to [`MatrixSnapshot`], so the matrix's whole read API is
/// available directly (`reader.cost(..)`, `reader.joint_cost(..)`,
/// `reader.workload_cost(..)`). Lookups take no lock and call no
/// optimizer; they are consistent within the pinned generation — a handle
/// cloned before an epoch rotation keeps evaluating the old generation
/// until [`Self::refresh`]. Check [`Self::is_stale`] (one atomic load) at
/// whatever staleness budget the caller tolerates; the writer never blocks
/// on readers.
#[derive(Clone)]
pub struct SessionReader {
    reader: MatrixReader,
}

impl SessionReader {
    /// The pinned snapshot (also reachable through `Deref`).
    pub fn snapshot(&self) -> &MatrixSnapshot {
        self.reader.snapshot()
    }

    /// Whether the session has published a newer generation than the one
    /// pinned here.
    pub fn is_stale(&self) -> bool {
        self.reader.is_stale()
    }

    /// Re-pin the latest published generation; returns the generation now
    /// pinned.
    pub fn refresh(&mut self) -> u64 {
        self.reader.refresh()
    }

    /// Workload cost without and with the given resident candidate ids —
    /// the interactive `evaluate` shape as a concurrent lookup.
    pub fn evaluate(&self, candidate_ids: &[usize]) -> (f64, f64) {
        let snap = self.reader.snapshot();
        let cfg = snap.config_of(candidate_ids.iter().copied());
        (
            snap.workload_cost(&snap.empty_config()),
            snap.workload_cost(&cfg),
        )
    }

    /// The interaction graph over resident candidate ids, computed
    /// entirely against the pinned snapshot (the `2^k` subset sweep never
    /// touches the writer).
    pub fn interaction_graph(
        &self,
        candidate_ids: &[usize],
    ) -> pgdesign_interaction::InteractionGraph {
        analyze_on(
            self.reader.snapshot(),
            candidate_ids,
            &InteractionConfig::default(),
        )
        .graph()
    }
}

impl Deref for SessionReader {
    type Target = MatrixSnapshot;
    fn deref(&self) -> &MatrixSnapshot {
        self.reader.snapshot()
    }
}

/// A design search that runs against a [`TuningSession`].
///
/// # The matrix-sharing contract
///
/// All advisors on one session share its single [`CostMatrix`]. An
/// implementation must **extend** that matrix, never replace or rebuild
/// it:
///
/// * register candidate structures through
///   [`CostMatrix::add_candidate`] / [`CostMatrix::register_fragment`] /
///   [`CostMatrix::register_split`] — these dedupe, so a structure another
///   consumer already registered reuses its resident cells (counted in
///   `TuningStats::matrix.cells_reused`) instead of recomputing them;
/// * leave registered candidates resident on return — the next advisor
///   (or the interactive view) may be about to ask about them; candidate
///   ids are stable, so leftover registrations never invalidate anyone's
///   bitsets. (The *stream owner* is the one exception: COLT's epoch
///   rotation evicts candidates it no longer tracks — including advisor
///   leftovers — to keep per-epoch cell work bounded by drift, so warm
///   reuse across a handoff is guaranteed at hand-off time, not across
///   later epochs);
/// * do not retire query slots the advisor did not add: the session's
///   active queries are the workload every other consumer is costing
///   against;
/// * cost configurations exclusively through matrix lookups
///   ([`CostMatrix::cost`], [`CostMatrix::joint_cost`], the `delta_*`
///   family) — per-design [`Inum::cost`] calls forfeit the cache and
///   show up in `TuningStats`.
///
/// Under this contract `advise` is cheap to call repeatedly and cheap to
/// interleave with other consumers: each call pays only for the cells its
/// *new* candidates and queries need.
pub trait Advisor {
    /// What the advisor hands back.
    type Report;

    /// Run the search against the session's shared matrix.
    fn advise(&mut self, session: &mut TuningSession<'_>) -> Self::Report;
}

// ---- The built-in advisors ----

use crate::designer::{JointReport, OfflineReport};
use pgdesign_autopart::{AutoPartAdvisor, AutoPartConfig, PartitionRecommendation};
use pgdesign_catalog::design::Index;
use pgdesign_cophy::{CophyAdvisor, CophyConfig, Recommendation};
use pgdesign_interaction::{analyze_on, schedule_pair_on, InteractionAnalysis, InteractionConfig};

/// CoPhy index selection as a session advisor (wraps
/// [`CophyAdvisor::recommend_on`]).
#[derive(Debug, Clone, Default)]
pub struct IndexAdvisor {
    /// CoPhy knobs (budget, candidate enumeration, solver limits, …).
    pub config: CophyConfig,
}

impl IndexAdvisor {
    /// An index advisor with the given configuration.
    pub fn new(config: CophyConfig) -> Self {
        IndexAdvisor { config }
    }
}

impl Advisor for IndexAdvisor {
    type Report = Recommendation;

    fn advise(&mut self, session: &mut TuningSession<'_>) -> Recommendation {
        // analyzer:allow(cost-purity): built-in advisor; costing flows
        // through the session matrix it populates, the sanctioned path.
        let inum = session.inum_longlived();
        CophyAdvisor::new(inum, self.config.clone()).recommend_on(session.matrix_mut())
    }
}

/// AutoPart partition suggestion as a session advisor (wraps
/// [`AutoPartAdvisor::recommend_on`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PartitionAdvisor {
    /// AutoPart knobs (replication budget, iteration caps, …).
    pub config: AutoPartConfig,
}

impl PartitionAdvisor {
    /// A partition advisor with the given configuration.
    pub fn new(config: AutoPartConfig) -> Self {
        PartitionAdvisor { config }
    }
}

impl Advisor for PartitionAdvisor {
    type Report = PartitionRecommendation;

    fn advise(&mut self, session: &mut TuningSession<'_>) -> PartitionRecommendation {
        // analyzer:allow(cost-purity): built-in advisor; fragment costing
        // lands in the session matrix, the sanctioned counted path.
        let inum = session.inum_longlived();
        AutoPartAdvisor::new(inum, self.config).recommend_on(session.matrix_mut())
    }
}

/// The joint index + partition mode as a session advisor: greedy index
/// selection and AutoPart's merge search share the session matrix and a
/// single storage budget.
#[derive(Debug, Clone)]
pub struct JointAdvisor {
    /// One storage budget covering indexes and replicated fragments.
    pub storage_budget_bytes: u64,
}

impl JointAdvisor {
    /// A joint advisor under one storage budget.
    pub fn new(storage_budget_bytes: u64) -> Self {
        JointAdvisor {
            storage_budget_bytes,
        }
    }
}

impl Advisor for JointAdvisor {
    type Report = JointReport;

    fn advise(&mut self, session: &mut TuningSession<'_>) -> JointReport {
        // analyzer:allow(cost-purity): built-in advisor; joint enumeration
        // reads and refills the session matrix, the sanctioned path.
        let inum = session.inum_longlived();
        let advisor = CophyAdvisor::new(
            inum,
            CophyConfig {
                storage_budget_bytes: self.storage_budget_bytes,
                ..Default::default()
            },
        );
        let joint = advisor.recommend_joint_on(
            session.matrix_mut(),
            AutoPartConfig {
                replication_budget_bytes: self.storage_budget_bytes / 10,
                ..Default::default()
            },
        );
        let schema = &session.designer().catalog.schema;
        let index_display = joint.indexes.iter().map(|i| i.display(schema)).collect();
        JointReport {
            joint,
            index_display,
            stats: session.stats(),
        }
    }
}

/// The full offline pipeline (demo scenario 2) as a session advisor:
/// CoPhy indexes + AutoPart partitions under a shared storage budget, the
/// interaction graph over the suggested indexes, and the materialization
/// schedules — all costed against the session's one matrix.
#[derive(Debug, Clone)]
pub struct OfflineAdvisor {
    /// Storage budget for the index half; partitions replicate into a
    /// tenth of it.
    pub storage_budget_bytes: u64,
}

impl OfflineAdvisor {
    /// An offline advisor under one storage budget.
    pub fn new(storage_budget_bytes: u64) -> Self {
        OfflineAdvisor {
            storage_budget_bytes,
        }
    }
}

impl Advisor for OfflineAdvisor {
    type Report = OfflineReport;

    fn advise(&mut self, session: &mut TuningSession<'_>) -> OfflineReport {
        // analyzer:allow(cost-purity): built-in advisor; CoPhy's ILP is
        // built from matrix cells this session owns, the sanctioned path.
        let inum = session.inum_longlived();
        let budget = self.storage_budget_bytes;

        let cophy = CophyAdvisor::new(
            inum,
            CophyConfig {
                storage_budget_bytes: budget,
                ..Default::default()
            },
        );
        let indexes = cophy.recommend_on(session.matrix_mut());

        let autopart = AutoPartAdvisor::new(
            inum,
            AutoPartConfig {
                replication_budget_bytes: budget / 10,
                ..Default::default()
            },
        );
        let partitions = autopart.recommend_on(session.matrix_mut());

        // Combine on the same matrix: the chosen indexes plus the accepted
        // fragments/splits form one joint configuration; keep the
        // combination only if it beats each alone (partitioning can erode
        // index benefit). Fragment/split registration below dedupes
        // against the search's own registrations, so no new cells.
        let matrix = session.matrix_mut();
        let chosen_ids: Vec<usize> = indexes
            .indexes
            .iter()
            .map(|idx| {
                matrix
                    .candidate_id(idx)
                    .expect("recommended indexes are registered on the session matrix")
            })
            .collect();
        let mut combined = matrix.empty_joint();
        for &id in &chosen_ids {
            combined.indexes.insert(id);
        }
        for vp in partitions.design.verticals() {
            for group in &vp.groups {
                let fid = matrix.register_fragment(vp.table, group);
                combined.fragments.insert(fid);
            }
        }
        for hp in partitions.design.horizontals() {
            let sid = matrix.register_split(hp.clone());
            combined.splits.insert(sid);
        }
        let matrix = session.matrix();
        let empty = matrix.empty_joint();
        let combined_cost = matrix.joint_workload_cost(&combined);
        let base_cost = matrix.joint_workload_cost(&empty);

        let mut index_only = matrix.empty_joint();
        for &id in &chosen_ids {
            index_only.indexes.insert(id);
        }
        let mut partition_only = combined.clone();
        partition_only.indexes.clear();

        let options = [
            (combined.clone(), combined_cost),
            (index_only, indexes.cost),
            (partition_only, partitions.cost),
        ];
        let (final_cfg, final_cost) = options
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("three options");
        let final_design = matrix.joint_design_of(&final_cfg);

        // Interaction analysis + schedules over the chosen indexes, served
        // from the very same matrix cells the selection used.
        let analysis = analyze_on(matrix, &chosen_ids, &InteractionConfig::default());
        let graph = analysis.graph();
        let (schedule, naive) = schedule_pair_on(matrix, &chosen_ids);

        let per_query = matrix
            .active_query_ids()
            .map(|qi| {
                (
                    matrix.joint_cost(qi, &empty),
                    matrix.joint_cost(qi, &final_cfg),
                )
            })
            .collect();

        let schema = &session.designer().catalog.schema;
        let index_display = indexes.indexes.iter().map(|i| i.display(schema)).collect();
        OfflineReport {
            indexes,
            partitions,
            design: final_design,
            base_cost,
            combined_cost: final_cost,
            per_query,
            analysis,
            graph,
            schedule,
            naive_schedule: naive,
            index_display,
            stats: session.stats(),
        }
    }
}

/// Degree-of-interaction analysis over an explicit candidate set as a
/// session advisor: the candidates are registered on the session matrix
/// (reusing resident cells) and the `2^k` subset sweep is pure lookups.
#[derive(Debug, Clone)]
pub struct InteractionAdvisor {
    /// The candidate indexes to analyze.
    pub indexes: Vec<Index>,
    /// Analysis knobs.
    pub config: InteractionConfig,
}

impl InteractionAdvisor {
    /// An interaction advisor over a candidate set.
    pub fn new(indexes: Vec<Index>) -> Self {
        InteractionAdvisor {
            indexes,
            config: InteractionConfig::default(),
        }
    }
}

impl Advisor for InteractionAdvisor {
    type Report = InteractionAnalysis;

    fn advise(&mut self, session: &mut TuningSession<'_>) -> InteractionAnalysis {
        // Bulk registration: new candidates' cells are computed in one
        // parallel fan-out instead of one serial pass per index.
        let ids = session.matrix_mut().add_candidates(&self.indexes);
        analyze_on(session.matrix(), &ids, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::generators::sdss_workload;

    fn designer() -> Designer {
        Designer::new(sdss_catalog(0.01))
    }

    #[test]
    fn session_advisors_share_one_matrix() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 91);
        let mut session = d.tuning_session(w);
        let builds_after_warmup = session.stats().matrix.builds;

        let rec = session.advise(&mut IndexAdvisor::default());
        assert!(rec.cost <= rec.base_cost);
        let parts = session.advise(&mut PartitionAdvisor::default());
        assert!(parts.cost <= parts.base_cost + 1e-6);

        assert_eq!(
            session.stats().matrix.builds,
            builds_after_warmup,
            "advisors must extend the session matrix, not rebuild it"
        );
    }

    #[test]
    fn second_advise_reuses_the_first_ones_cells() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 92);
        let mut session = d.tuning_session(w);
        session.advise(&mut IndexAdvisor::default());
        let reused_before = session.stats().matrix.cells_reused;
        // The same enumeration re-registers the same candidates: every one
        // of them must reuse its resident cells.
        session.advise(&mut IndexAdvisor::default());
        assert!(
            session.stats().matrix.cells_reused > reused_before,
            "re-advising must hit the resident cells"
        );
    }

    #[test]
    fn interaction_advisor_is_pure_lookups_after_registration() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 93);
        let mut session = d.tuning_session(w);
        let photo = d.catalog.schema.table_by_name("photoobj").unwrap().id;
        let mut advisor = InteractionAdvisor::new(vec![
            Index::new(photo, vec![3, 6]),
            Index::new(photo, vec![6, 3]),
        ]);
        let cost_calls = session.stats().inum.cost_calls;
        let analysis = session.advise(&mut advisor);
        assert_eq!(analysis.indexes.len(), 2);
        assert_eq!(
            session.stats().inum.cost_calls,
            cost_calls,
            "the subset sweep must run on matrix lookups, not Inum::cost"
        );
    }
}
