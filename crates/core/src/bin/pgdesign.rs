//! `pgdesign` — command-line front end to the designer.
//!
//! The demo drives the tool through a GUI; this binary is the terminal
//! equivalent. Subcommands map to the three scenarios:
//!
//! ```text
//! pgdesign recommend --catalog sdss --scale 0.01 --workload w.sql --budget-frac 0.5
//! pgdesign evaluate  --catalog sdss --workload w.sql --index photoobj:type,r --index specobj:bestobjid
//! pgdesign session   --catalog sdss --workload w.sql --index photoobj:objid --vertical "photoobj:objid,ra|type,r"
//! pgdesign online    --catalog sdss --queries 600 --epoch 25
//! pgdesign explain   --catalog sdss --sql "SELECT ra FROM photoobj WHERE objid = 5"
//! ```
//!
//! Workload files contain one SQL statement per non-empty, non-`--` line
//! (semicolons optional). Pass `--workload builtin:N` for an N-query
//! generated SDSS/TPC-H workload.

use pgdesign::{Designer, InteractiveSession, OnlineSession};
use pgdesign_catalog::samples::{sdss_catalog, tpch_catalog};
use pgdesign_catalog::Catalog;
use pgdesign_colt::ColtConfig;
use pgdesign_query::generators::{sdss_workload, tpch_workload, DriftingStream};
use pgdesign_query::{parse_query, Workload};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  pgdesign recommend --catalog <sdss|tpch> [--scale S] --workload <FILE|builtin:N> [--budget-frac F] [--joint] [--stats]
  pgdesign evaluate  --catalog <sdss|tpch> [--scale S] --workload <FILE|builtin:N> [--index table:col1,col2]...
  pgdesign session   --catalog <sdss|tpch> [--scale S] --workload <FILE|builtin:N> [--index t:c1,c2]... [--vertical t:c1,c2|c3]... [--horizontal t:col:N]... [--state DIR] [--stats]
  pgdesign online    --catalog <sdss|tpch> [--scale S] [--queries N] [--epoch N] [--deadline-ms T] [--state DIR] [--kill-after N] [--expect-warm] [--stats]
  pgdesign explain   --catalog <sdss|tpch> [--scale S] --sql <QUERY>
  pgdesign --help";

const HELP: &str = "pgdesign — automated, interactive, portable DB designer

Subcommands (one per usage scenario of the SIGMOD 2010 demo):
  evaluate    Scenario 1 (interactive): what-if evaluation of DBA-chosen
              indexes, with benefit panel and index-interaction graph
  session     Scenario 1, step by step: a TuningSession applying each
              what-if structure in turn — every re-evaluation after the
              one-off warm-up is pure cost-matrix lookups
  recommend   Scenario 2 (offline): automatic index recommendation for a
              workload under a storage budget
  online      Scenario 3 (online): continuous COLT-style tuning over a
              drifting query stream
  explain     Show the what-if optimizer's plan for one SQL statement

Common flags:
  --catalog <sdss|tpch>   Built-in sample catalog (default sdss)
  --scale S               Catalog scale factor (default 0.01)
  --workload <FILE|builtin:N>
                          One SQL statement per line, or a generated
                          N-query built-in workload

Per-subcommand flags:
  recommend   --budget-frac F        Index budget as a fraction of data size
              --joint                Joint index + partition mode: one
                                     partition-aware cost matrix serves both
                                     searches under the single budget
              --stats                Print INUM/cost-matrix counters (matrix
                                     builds, lookups, optimizer calls avoided)
  evaluate    --index table:c1,c2    Hypothetical index (repeatable)
  session     --index table:c1,c2    Hypothetical index (repeatable)
              --vertical t:c1,c2|c3  Hypothetical vertical partitioning:
                                     column groups separated by '|'
              --horizontal t:col:N   Hypothetical N-way range partitioning
              --state DIR            Durable state directory: the cost matrix
                                     persists as a checksummed snapshot + edit
                                     log, and a reopened session resumes on it
                                     without a rebuild
              --stats                Print INUM/cost-matrix counters (plus
                                     recovery counters when --state is set)
  online      --queries N --epoch N  Stream length and COLT epoch length
              --deadline-ms T        Bound each epoch close to T ms of wall
                                     clock: over-budget epochs degrade down
                                     the ladder (incremental-only, then
                                     publish-nothing) instead of stalling;
                                     --stats reports health and staleness
              --state DIR            Durable state directory; a restarted
                                     stream resumes on the persisted matrix
              --kill-after N         Exit hard (code 137, no shutdown path)
                                     after observing N queries — the crash
                                     half of a recovery drill
              --expect-warm          Fail unless this run warm-restored the
                                     matrix (builds == 0, cells reused)
  explain     --sql QUERY            Statement to explain";

/// Minimal flag parser: `--key value` pairs after the subcommand;
/// repeatable keys collect into a list.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, found {:?}", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

fn load_catalog(flags: &Flags) -> Result<Catalog, String> {
    let scale: f64 = flags
        .get("scale")
        .map(|s| s.parse().map_err(|_| format!("bad --scale {s:?}")))
        .transpose()?
        .unwrap_or(0.01);
    match flags.get("catalog").unwrap_or("sdss") {
        "sdss" => Ok(sdss_catalog(scale)),
        "tpch" => Ok(tpch_catalog(scale)),
        other => Err(format!("unknown catalog {other:?} (sdss or tpch)")),
    }
}

/// Parse a workload file's text into queries (used by tests too).
fn parse_workload_text(catalog: &Catalog, text: &str) -> Result<Workload, String> {
    let mut w = Workload::new();
    for (lineno, line) in text.lines().enumerate() {
        let stmt = line.trim().trim_end_matches(';').trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        let q =
            parse_query(&catalog.schema, stmt).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        w.push(q, 1.0);
    }
    if w.is_empty() {
        return Err("workload file contains no statements".into());
    }
    Ok(w)
}

fn load_workload(catalog: &Catalog, flags: &Flags) -> Result<Workload, String> {
    let spec = flags
        .get("workload")
        .ok_or_else(|| "missing --workload".to_string())?;
    if let Some(n) = spec.strip_prefix("builtin:") {
        let n: usize = n.parse().map_err(|_| format!("bad builtin size {n:?}"))?;
        let is_tpch = flags.get("catalog") == Some("tpch");
        return Ok(if is_tpch {
            tpch_workload(catalog, n, 42)
        } else {
            sdss_workload(catalog, n, 42)
        });
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec:?}: {e}"))?;
    parse_workload_text(catalog, &text)
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    // A bare `help` only counts in subcommand position, and `--help`/`-h`
    // only in flag-key positions — later args could be flag *values* that
    // legitimately spell "help" or "-h" (e.g. a workload file named -h).
    let help_after_subcommand = || {
        let mut i = 0;
        while i < rest.len() {
            match rest[i].as_str() {
                "--help" | "-h" => return true,
                "--stats" | "--joint" | "--expect-warm" => i += 1, // the valueless flags
                s if s.starts_with("--") => i += 2,                // skip the flag's value
                _ => return false, // malformed; let Flags::parse report it
            }
        }
        false
    };
    if matches!(cmd.as_str(), "--help" | "-h" | "help") || help_after_subcommand() {
        println!("{HELP}");
        println!();
        println!("{USAGE}");
        return Ok(());
    }
    // Validate the subcommand before the (multi-second) catalog build so
    // typos fail instantly.
    if !matches!(
        cmd.as_str(),
        "recommend" | "evaluate" | "session" | "online" | "explain"
    ) {
        return Err(format!("unknown subcommand {cmd:?}"));
    }
    // `--stats`, `--joint`, and `--expect-warm` are the valueless flags;
    // extract them before the `--key value` pair parser sees the argument
    // list. Each is honoured by specific subcommands — elsewhere they
    // would be silently ignored, so fail loudly.
    let show_stats = rest.iter().any(|a| a == "--stats");
    let joint = rest.iter().any(|a| a == "--joint");
    let expect_warm = rest.iter().any(|a| a == "--expect-warm");
    if show_stats && !matches!(cmd.as_str(), "recommend" | "session" | "online") {
        return Err(format!(
            "--stats is only supported by `recommend`, `session` and `online`, not `{cmd}`"
        ));
    }
    if joint && cmd != "recommend" {
        return Err(format!(
            "--joint is only supported by `recommend`, not `{cmd}`"
        ));
    }
    if expect_warm && cmd != "online" {
        return Err(format!(
            "--expect-warm is only supported by `online`, not `{cmd}`"
        ));
    }
    let rest: Vec<String> = rest
        .iter()
        .filter(|a| *a != "--stats" && *a != "--joint" && *a != "--expect-warm")
        .cloned()
        .collect();
    let flags = Flags::parse(&rest)?;
    if flags.get("state").is_some() && !matches!(cmd.as_str(), "session" | "online") {
        return Err(format!(
            "--state is only supported by `session` and `online`, not `{cmd}`"
        ));
    }
    if flags.get("kill-after").is_some() && cmd != "online" {
        return Err(format!(
            "--kill-after is only supported by `online`, not `{cmd}`"
        ));
    }
    let catalog = load_catalog(&flags)?;
    let designer = Designer::new(catalog);

    match cmd.as_str() {
        "recommend" => {
            let workload = load_workload(&designer.catalog, &flags)?;
            let frac: f64 = flags
                .get("budget-frac")
                .map(|s| s.parse().map_err(|_| format!("bad --budget-frac {s:?}")))
                .transpose()?
                .unwrap_or(0.5);
            let budget = (designer.catalog.data_bytes() as f64 * frac) as u64;
            if joint {
                let report = designer.recommend_joint(&workload, budget);
                println!("{report}");
                println!("Index definitions:");
                for idx in &report.joint.indexes {
                    println!(
                        "  CREATE INDEX ON {};",
                        idx.display(&designer.catalog.schema)
                    );
                }
                if show_stats {
                    println!();
                    print!("{}", report.stats);
                }
                return Ok(());
            }
            let report = designer.recommend(&workload, budget);
            println!("{report}");
            println!("Index definitions:");
            for idx in &report.indexes.indexes {
                println!(
                    "  CREATE INDEX ON {};",
                    idx.display(&designer.catalog.schema)
                );
            }
            if show_stats {
                println!();
                print!("{}", report.stats);
            }
            Ok(())
        }
        "evaluate" => {
            let workload = load_workload(&designer.catalog, &flags)?;
            let mut session = designer.session(workload);
            for spec in flags.get_all("index") {
                let (table, cols) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--index must be table:col1,col2; got {spec:?}"))?;
                let cols: Vec<&str> = cols.split(',').collect();
                session.add_index_by_name(table, &cols)?;
            }
            println!("{}", session.evaluate());
            let graph = session.interaction_graph();
            if graph.edge_count() > 0 {
                println!("Index interactions:");
                print!("{}", graph.to_text(&designer.catalog.schema, 10));
            }
            Ok(())
        }
        "session" => {
            let workload = load_workload(&designer.catalog, &flags)?;
            let n_queries = workload.len();
            let mut session = match flags.get("state") {
                Some(dir) => InteractiveSession::open_or_create(&designer, workload, dir)
                    .map_err(|e| format!("cannot open state dir {dir:?}: {e}"))?,
                None => designer.session(workload),
            };
            let baseline = session.evaluate();
            println!(
                "warm-up: {n_queries} queries cached, workload cost {:.1}",
                baseline.base_cost
            );
            let schema = &designer.catalog.schema;
            let mut step = 0usize;
            for (key, spec) in &flags.pairs {
                let label = match key.as_str() {
                    "index" => {
                        let (table, cols) = spec.split_once(':').ok_or_else(|| {
                            format!("--index must be table:col1,col2; got {spec:?}")
                        })?;
                        let cols: Vec<&str> = cols.split(',').collect();
                        session.add_index_by_name(table, &cols)?;
                        format!("+index {table}({})", cols.join(", "))
                    }
                    "vertical" => {
                        let (table, groups) = spec.split_once(':').ok_or_else(|| {
                            format!("--vertical must be table:c1,c2|c3,...; got {spec:?}")
                        })?;
                        let t = schema
                            .table_by_name(table)
                            .ok_or_else(|| format!("unknown table {table:?}"))?;
                        let mut col_groups: Vec<Vec<u16>> = Vec::new();
                        for group in groups.split('|') {
                            let mut ids = Vec::new();
                            for name in group.split(',') {
                                ids.push(
                                    t.column_by_name(name.trim())
                                        .ok_or_else(|| format!("unknown column {table}.{name}"))?,
                                );
                            }
                            col_groups.push(ids);
                        }
                        session.set_vertical(pgdesign_catalog::design::VerticalPartitioning::new(
                            t.id, col_groups,
                        ));
                        format!(
                            "+vertical {table} ({} fragments)",
                            groups.split('|').count()
                        )
                    }
                    "horizontal" => {
                        let parts: Vec<&str> = spec.split(':').collect();
                        let [table, col, n] = parts.as_slice() else {
                            return Err(format!("--horizontal must be table:col:N; got {spec:?}"));
                        };
                        let t = schema
                            .table_by_name(table)
                            .ok_or_else(|| format!("unknown table {table:?}"))?;
                        let c = t
                            .column_by_name(col)
                            .ok_or_else(|| format!("unknown column {table}.{col}"))?;
                        let n: usize = n
                            .parse()
                            .map_err(|_| format!("bad partition count {n:?}"))?;
                        if n < 2 {
                            return Err("horizontal partitioning needs ≥ 2 partitions".into());
                        }
                        let stats = designer.catalog.table_stats(t.id).column(c);
                        let bounds: Vec<f64> = (1..n)
                            .map(|i| stats.min + (stats.max - stats.min) * i as f64 / n as f64)
                            .collect();
                        session.set_horizontal(
                            pgdesign_catalog::design::HorizontalPartitioning::new(t.id, c, bounds),
                        );
                        format!("+horizontal {table}.{col} ({n} partitions)")
                    }
                    _ => continue,
                };
                step += 1;
                // Instant re-evaluation: each step is pure matrix lookups.
                let eval = session.evaluate();
                println!(
                    "step {step}: {label:<44} cost {:>12.1}  ({:>5.1}%)",
                    eval.whatif_cost,
                    100.0 * eval.average_benefit()
                );
            }
            println!();
            println!("{}", session.evaluate());
            let graph = session.interaction_graph();
            if graph.edge_count() > 0 {
                println!("Index interactions:");
                print!("{}", graph.to_text(schema, 10));
            }
            let frags = session.fragment_report();
            if !frags.is_empty() {
                println!("Rewritten-query report:");
                print!("{frags}");
            }
            if show_stats {
                // Publish the explored state and serve one evaluation from
                // a concurrent reader, so the stats cover the lock-free
                // snapshot path too.
                session.publish();
                let reader = session.reader();
                let _ = reader.evaluate(&[]);
                println!();
                print!("{}", session.tuning_stats());
            }
            Ok(())
        }
        "online" => {
            let queries: usize = flags
                .get("queries")
                .map(|s| s.parse().map_err(|_| format!("bad --queries {s:?}")))
                .transpose()?
                .unwrap_or(600);
            let epoch: usize = flags
                .get("epoch")
                .map(|s| s.parse().map_err(|_| format!("bad --epoch {s:?}")))
                .transpose()?
                .unwrap_or(25);
            let kill_after: Option<usize> = flags
                .get("kill-after")
                .map(|s| s.parse().map_err(|_| format!("bad --kill-after {s:?}")))
                .transpose()?;
            let deadline_ms: Option<u64> = flags
                .get("deadline-ms")
                .map(|s| s.parse().map_err(|_| format!("bad --deadline-ms {s:?}")))
                .transpose()?;
            if expect_warm && flags.get("state").is_none() {
                return Err("--expect-warm requires --state".into());
            }
            let mut stream = DriftingStream::sdss_default(designer.catalog.clone(), queries / 6, 7);
            let config = ColtConfig {
                epoch_length: epoch,
                storage_budget_bytes: designer.catalog.data_bytes() / 4,
                epoch_deadline: deadline_ms.map(std::time::Duration::from_millis),
                ..Default::default()
            };
            let mut session = match flags.get("state") {
                Some(dir) => OnlineSession::open_or_create(&designer, config, dir)
                    .map_err(|e| format!("cannot open state dir {dir:?}: {e}"))?,
                None => designer.online_session(config),
            };
            // The stream is seed-deterministic, so a restarted run re-draws
            // the same query mix: its first epoch dedupes against the
            // restored residents — that is the warm-restart contract
            // `--expect-warm` checks.
            let mut fed = 0usize;
            for q in stream.batch(queries) {
                let _ = session.observe(q);
                fed += 1;
                if kill_after == Some(fed) {
                    // A real hard kill: no destructors, no final sync —
                    // recovery must work from whatever the last epoch
                    // boundary fsync'd.
                    eprintln!("pgdesign: --kill-after {fed}: exiting hard (137)");
                    std::process::exit(137);
                }
            }
            if expect_warm {
                let stats = session.tuning_stats();
                let warm = stats.matrix.builds == 0 && stats.matrix.cells_reused > 0;
                if !warm {
                    return Err(format!(
                        "--expect-warm: run was not warm (builds {}, cells_reused {}, recovery: {})",
                        stats.matrix.builds,
                        stats.matrix.cells_reused,
                        stats
                            .recovery
                            .and_then(|r| r.cold_start)
                            .map_or("none".to_string(), |c| c.to_string()),
                    ));
                }
            }
            print!("{}", session.trajectory());
            let (untuned, tuned) = session.cumulative_costs();
            println!(
                "cumulative: untuned {untuned:.0}, tuned {tuned:.0} ({:.1}% saved)",
                100.0 * (untuned - tuned).max(0.0) / untuned.max(1e-9)
            );
            println!();
            print!("{}", session.tuning_stats());
            Ok(())
        }
        "explain" => {
            let sql = flags
                .get("sql")
                .ok_or_else(|| "missing --sql".to_string())?;
            let q = parse_query(&designer.catalog.schema, sql).map_err(|e| e.to_string())?;
            print!("{}", designer.explain(&designer.catalog.base_design, &q));
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_parse_pairs_and_repeats() {
        let args: Vec<String> = ["--a", "1", "--b", "2", "--a", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("b"), Some("2"));
        assert_eq!(f.get_all("a"), vec!["1", "3"]);
        assert!(f.get("c").is_none());
    }

    #[test]
    fn flags_reject_danglers() {
        let args: Vec<String> = ["--a"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
        let args: Vec<String> = ["b", "1"].iter().map(|s| s.to_string()).collect();
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn workload_text_skips_comments_and_blanks() {
        let catalog = sdss_catalog(0.005);
        let text = "-- comment\n\nSELECT ra FROM photoobj WHERE objid = 1;\n   \nSELECT dec FROM photoobj WHERE type = 2\n";
        let w = parse_workload_text(&catalog, text).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn workload_text_reports_line_numbers() {
        let catalog = sdss_catalog(0.005);
        let text = "SELECT ra FROM photoobj;\nSELECT bogus FROM photoobj;";
        let err = parse_workload_text(&catalog, text).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_workload_rejected() {
        let catalog = sdss_catalog(0.005);
        assert!(parse_workload_text(&catalog, "-- nothing\n").is_err());
    }

    #[test]
    fn run_explain_smoke() {
        let args: Vec<String> = [
            "explain",
            "--catalog",
            "sdss",
            "--scale",
            "0.005",
            "--sql",
            "SELECT ra FROM photoobj WHERE objid = 5",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        run(&args).unwrap();
    }

    #[test]
    fn help_spelled_as_a_flag_value_is_not_help() {
        // "-h" here is the *value* of --catalog, not a help request: the
        // command must fail on the bad catalog instead of exiting 0.
        let args: Vec<String> = ["explain", "--catalog", "-h", "--sql", "SELECT 1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = run(&args).unwrap_err();
        assert!(err.contains("unknown catalog"), "{err}");
    }

    #[test]
    fn run_unknown_subcommand_fails() {
        let args: Vec<String> = ["frobnicate", "--catalog", "sdss"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args).is_err());
    }
}
