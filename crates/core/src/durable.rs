//! Durable persistence of a [`crate::TuningSession`]'s cost matrix —
//! snapshot + edit-log plumbing and the warm-restore policy.
//!
//! The layering: `pgdesign-durability` owns the storage mechanics (CRC'd
//! record framing, atomic snapshot replacement, fsync-per-record log
//! appends, torn-tail truncation); `pgdesign_inum::matrix::persist` owns
//! the payload codec (what a cell or an edit means); this module owns
//! *policy* — when a restore is trusted, when it degrades to a cold
//! build, when the log is checkpointed into a fresh snapshot.
//!
//! ## What is on disk
//!
//! A state directory holds two files: `matrix.pgds`, a versioned
//! checksummed snapshot of the last checkpointed *published* matrix
//! generation, and `matrix.pgdl`, an append-only edit log whose header is
//! bound to the snapshot's body CRC (a log can only replay against the
//! exact snapshot it was written for — edits are positional, so replaying
//! them against any other base would be wrong, not just stale).
//!
//! ## The recovery ladder
//!
//! Recovery degrades gracefully, never wrongly:
//!
//! 1. snapshot reads, decodes, and matches the catalog → warm restore;
//!    cells whose table statistics changed are recomputed (counted in
//!    [`RecoveryStats::cells_invalidated_stale`]), everything else is
//!    adopted without a build.
//! 2. the log replays on top — a torn or corrupt tail is detected by the
//!    per-record CRC and dropped at the last good record.
//! 3. anything structurally wrong with the snapshot (bad magic/CRC,
//!    format-version skew, catalog shape change) → cold build, with the
//!    reason recorded in [`RecoveryStats::cold_start`] and logged.
//!
//! After every open the session immediately checkpoints: the restored (or
//! cold-built) state becomes a fresh snapshot and the log is truncated,
//! so recovery work is never paid twice.

use crate::health::{io_retry_backoff, IO_RETRY_MAX};
use crate::report::{ColdStart, RecoveryStats};
use pgdesign_durability::{
    log_append_retrying, log_open, log_reset, read_snapshot, write_snapshot, DurableStore,
    LogState, SnapshotFileError,
};
use pgdesign_inum::{
    decode_edit, decode_snapshot, encode_edit, restore_matrix, CostMatrix, Inum, MatrixEdit,
    PersistError,
};
use std::io;

/// Snapshot file name within a state directory.
pub(crate) const SNAPSHOT_NAME: &str = "matrix.pgds";
/// Edit-log file name within a state directory.
pub(crate) const LOG_NAME: &str = "matrix.pgdl";

/// How many publishes may accumulate in the edit log before the session
/// folds them into a fresh snapshot and truncates the log.
const CHECKPOINT_EVERY_PUBLISHES: usize = 8;

/// The durable half of a session: the store, the log-position bookkeeping,
/// and the recovery counters from open time.
pub(crate) struct DurableHandle {
    store: Box<dyn DurableStore>,
    /// Edits appended to the log after its last `Publish` marker — exactly
    /// the writer state a checkpoint's published snapshot does *not*
    /// capture, so a checkpoint re-appends them to the fresh log.
    pending: Vec<MatrixEdit>,
    publishes_since_checkpoint: usize,
    /// Set when a log append fails beyond the retry budget: further
    /// appends are suppressed (a log with a hole would replay to a
    /// *wrong* matrix) until the next checkpoint rewrites the whole
    /// state atomically.
    degraded: bool,
    /// Transient-fsync retries that succeeded, session lifetime.
    io_retries: u64,
    /// Retries since the last checkpoint (drives the Degraded(IoRetries)
    /// health signal; a checkpoint clears it along with `degraded`).
    retries_since_checkpoint: u64,
    /// Times the log suspended (retry budget exhausted or append error).
    io_suspensions: u64,
    pub(crate) recovery: RecoveryStats,
}

/// `PGDESIGN_KILL_AT_CHECKPOINT=<n>` hard-kills the process (exit 137,
/// no destructors) immediately before the `n`-th checkpoint of this
/// process writes its snapshot — the recovery drill's "die mid-
/// checkpoint" lever. Counted process-wide so multi-session drills
/// still die exactly once.
fn kill_at_checkpoint_hook() {
    use std::sync::atomic::{AtomicU64, Ordering};
    static CHECKPOINTS: AtomicU64 = AtomicU64::new(0);
    let Ok(val) = std::env::var("PGDESIGN_KILL_AT_CHECKPOINT") else {
        return;
    };
    let Ok(ordinal) = val.parse::<u64>() else {
        return;
    };
    let n = CHECKPOINTS.fetch_add(1, Ordering::SeqCst) + 1;
    if n == ordinal {
        eprintln!("pgdesign: PGDESIGN_KILL_AT_CHECKPOINT={ordinal}: exiting hard (137)");
        std::process::exit(137);
    }
}

impl DurableHandle {
    pub(crate) fn new(
        store: Box<dyn DurableStore>,
        pending: Vec<MatrixEdit>,
        recovery: RecoveryStats,
    ) -> Self {
        DurableHandle {
            store,
            pending,
            publishes_since_checkpoint: 0,
            degraded: false,
            io_retries: 0,
            retries_since_checkpoint: 0,
            io_suspensions: 0,
            recovery,
        }
    }

    /// Whether the edit log is currently suspended (healed by the next
    /// checkpoint).
    pub(crate) fn is_suspended(&self) -> bool {
        self.degraded
    }

    /// `(lifetime retries, retries since last checkpoint, suspensions)`.
    pub(crate) fn io_counters(&self) -> (u64, u64, u64) {
        (
            self.io_retries,
            self.retries_since_checkpoint,
            self.io_suspensions,
        )
    }

    /// One retried append with the shared policy: up to [`IO_RETRY_MAX`]
    /// retries of a failed fsync, deterministic backoff between attempts.
    fn append_one(&mut self, edit: &MatrixEdit) -> io::Result<u32> {
        log_append_retrying(
            &mut *self.store,
            LOG_NAME,
            &encode_edit(edit),
            IO_RETRY_MAX,
            |attempt| std::thread::sleep(io_retry_backoff(attempt)),
        )
    }

    /// Append drained journal edits to the log (fsync per record).
    /// Transient failures are retried with deterministic backoff; only
    /// when the retry budget is exhausted (or the append itself fails —
    /// not retryable, a partial frame may be on disk) does the handle
    /// suspend the log. Nothing further is appended while suspended, but
    /// `pending` keeps tracking post-publish edits so the healing
    /// checkpoint stays exact. Returns whether a checkpoint is due.
    pub(crate) fn append_edits(&mut self, edits: &[MatrixEdit]) -> bool {
        for edit in edits {
            if !self.degraded {
                match self.append_one(edit) {
                    Ok(retries) => {
                        self.io_retries += retries as u64;
                        self.retries_since_checkpoint += retries as u64;
                    }
                    Err(e) => {
                        eprintln!(
                            "pgdesign: durable log append failed after retries ({e}); \
                             suspending the log until the next checkpoint"
                        );
                        self.degraded = true;
                        self.io_suspensions += 1;
                    }
                }
            }
            if matches!(edit, MatrixEdit::Publish) {
                self.pending.clear();
                self.publishes_since_checkpoint += 1;
            } else {
                self.pending.push(edit.clone());
            }
        }
        self.degraded || self.publishes_since_checkpoint >= CHECKPOINT_EVERY_PUBLISHES
    }

    /// Write `records` (the published matrix state) as a fresh snapshot,
    /// truncate the log against it, and re-append the pending post-publish
    /// edits. Atomic at every step: a crash mid-checkpoint leaves either
    /// the old state or the new one, both self-consistent.
    pub(crate) fn checkpoint(&mut self, records: &[Vec<u8>]) -> io::Result<()> {
        kill_at_checkpoint_hook();
        let crc = write_snapshot(&mut *self.store, SNAPSHOT_NAME, records)?;
        log_reset(&mut *self.store, LOG_NAME, crc)?;
        self.degraded = false;
        self.retries_since_checkpoint = 0;
        let pending = std::mem::take(&mut self.pending);
        for edit in &pending {
            if let Err(e) = self.append_one(edit) {
                self.degraded = true;
                self.io_suspensions += 1;
                self.pending = pending;
                return Err(e);
            }
        }
        self.pending = pending;
        self.publishes_since_checkpoint = 0;
        Ok(())
    }

    /// Read a named auxiliary snapshot ("sidecar") from the same store —
    /// a single-record checksummed file beside the matrix state. `None`
    /// for anything unusable (missing, corrupt, version-skewed): sidecars
    /// are best-effort warm-start accelerators, never load-bearing.
    pub(crate) fn read_sidecar(&mut self, name: &str) -> Option<Vec<u8>> {
        match read_snapshot(&mut *self.store, name) {
            Ok(file) => file.records.into_iter().next(),
            Err(_) => None,
        }
    }

    /// Write a named auxiliary snapshot (atomic replace, CRC-framed).
    pub(crate) fn write_sidecar(&mut self, name: &str, payload: &[u8]) -> io::Result<()> {
        write_snapshot(&mut *self.store, name, &[payload.to_vec()]).map(|_| ())
    }
}

/// A warm restore: the matrix (log already replayed) plus the edits after
/// the last publish marker, which the next checkpoint must re-append.
pub(crate) type Restored<'a> = (CostMatrix<'a>, Vec<MatrixEdit>);

/// Attempt a warm restore from `store` against `inum`'s catalog. Returns
/// the restored matrix (log already replayed) plus the edits after the
/// last publish marker, or `None` for any cold-start condition — with the
/// reason in the returned [`RecoveryStats`] either way. Only a real I/O
/// error (unreadable device, not corrupt bytes) aborts the open.
pub(crate) fn try_restore<'a>(
    inum: &'a Inum<'a>,
    store: &mut dyn DurableStore,
) -> io::Result<(Option<Restored<'a>>, RecoveryStats)> {
    let mut recovery = RecoveryStats::default();
    let cold = |reason: ColdStart, detail: &str, recovery: &mut RecoveryStats| {
        if reason != ColdStart::NoState {
            eprintln!("pgdesign: cold start, {reason}: {detail}");
        }
        recovery.cold_start = Some(reason);
    };

    let file = match read_snapshot(store, SNAPSHOT_NAME) {
        Ok(file) => file,
        Err(SnapshotFileError::Missing) => {
            cold(ColdStart::NoState, "", &mut recovery);
            return Ok((None, recovery));
        }
        Err(SnapshotFileError::VersionSkew { found }) => {
            cold(
                ColdStart::VersionSkew,
                &format!("snapshot has format version {found}"),
                &mut recovery,
            );
            return Ok((None, recovery));
        }
        Err(e @ (SnapshotFileError::BadMagic | SnapshotFileError::Corrupt(_))) => {
            cold(ColdStart::SnapshotCorrupt, &e.to_string(), &mut recovery);
            return Ok((None, recovery));
        }
        Err(SnapshotFileError::Io(e)) => return Err(e),
    };

    let decoded = match decode_snapshot(&file.records) {
        Ok(d) => d,
        Err(e) => {
            cold(ColdStart::SnapshotCorrupt, &e.to_string(), &mut recovery);
            return Ok((None, recovery));
        }
    };
    let (mut matrix, report) = match restore_matrix(inum, decoded) {
        Ok(r) => r,
        // The only restore-time failure is a catalog whose table set no
        // longer matches the snapshot's — per-table *statistics* drift is
        // handled by invalidation, not failure.
        Err(e @ PersistError::Invalid(_)) => {
            cold(ColdStart::CatalogChanged, &e.to_string(), &mut recovery);
            return Ok((None, recovery));
        }
        Err(e @ PersistError::Codec(_)) => {
            cold(ColdStart::SnapshotCorrupt, &e.to_string(), &mut recovery);
            return Ok((None, recovery));
        }
    };
    recovery.snapshot_cells_loaded = report.cells_loaded;
    recovery.cells_invalidated_stale = report.cells_invalidated;

    let mut pending = Vec::new();
    match log_open(store, LOG_NAME, file.body_crc)? {
        LogState::Replay(scan) => {
            recovery.log_records_dropped += scan.dropped_records;
            for (i, record) in scan.records.iter().enumerate() {
                match decode_edit(record) {
                    Ok(edit) => {
                        matrix.apply_edit(&edit);
                        recovery.log_records_replayed += 1;
                        if matches!(edit, MatrixEdit::Publish) {
                            pending.clear();
                        } else {
                            pending.push(edit);
                        }
                    }
                    Err(_) => {
                        // A CRC-valid but undecodable record: everything
                        // from here is untrustworthy — treat it like a
                        // torn tail.
                        recovery.log_records_dropped += (scan.records.len() - i) as u64;
                        break;
                    }
                }
            }
        }
        // A log bound to a different snapshot (a crash between snapshot
        // replacement and log truncation): its edits do not apply to this
        // base, so the snapshot alone is the recovered state.
        LogState::Mismatch(_) | LogState::Missing => {}
    }

    Ok((Some((matrix, pending)), recovery))
}
