//! Runtime health of a tuning daemon: the [`ServiceHealth`] state the
//! `--stats` surface reports, and the shared retry/backoff policy for
//! transient durable-store I/O.
//!
//! The robustness contract has three tiers. A **healthy** daemon runs
//! full epochs and journals every edit. Under pressure it **degrades**
//! along a ladder that trades work for latency but never correctness:
//! an epoch that blows its deadline skips candidate enumeration
//! (incremental-only), and one with no time at all publishes nothing and
//! keeps serving the previous generation — readers always hold a
//! complete, self-consistent snapshot whose costs replay exactly.
//! Transient I/O errors are retried with deterministic backoff; only
//! after [`IO_RETRY_MAX`] consecutive failures does the edit log
//! **suspend** until the next checkpoint rewrites durable state
//! atomically (a log with a hole would replay to a *wrong* matrix, so
//! suspension is the correct refusal, not a bug).
//!
//! Time is read through the injectable [`Clock`] re-exported here, so
//! every deadline path is deterministic under test ([`ManualClock`]) and
//! monotonic in production ([`SystemClock`]).

pub use pgdesign_colt::EpochMode;
pub use pgdesign_inum::{Clock, Deadline, ManualClock, SystemClock, WorkBudget};
use std::fmt;
use std::time::Duration;

/// Why the daemon is running below full service. Fieldless so
/// [`ServiceHealth`] stays `Copy` inside [`crate::TuningStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The last epoch tripped its deadline and ran incremental-only
    /// (no candidate enumeration; deferred work resumes next epoch).
    DeadlinePressure,
    /// One or more epochs published nothing; readers are serving a
    /// previous generation (see `TuningStats::stale_generations`).
    StaleGenerations,
    /// Durable appends needed retries recently (they succeeded — the
    /// log is intact — but the store is struggling).
    IoRetries,
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeReason::DeadlinePressure => "deadline pressure (incremental-only epoch)",
            DegradeReason::StaleGenerations => "serving a stale generation",
            DegradeReason::IoRetries => "durable store needed I/O retries",
        })
    }
}

/// The daemon's service state, worst-first: `Suspended` (edit log down
/// until checkpoint) > `Degraded` > `Healthy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceHealth {
    /// Full epochs, journaled edits, fresh generations.
    #[default]
    Healthy,
    /// Serving correct answers at reduced freshness or with I/O strain.
    Degraded(DegradeReason),
    /// Durable logging is suspended until the next checkpoint; tuning
    /// continues in memory and recovery falls back to the last
    /// checkpointed state.
    Suspended,
}

impl ServiceHealth {
    /// The worse of two states (order: Suspended > Degraded > Healthy;
    /// between two `Degraded`s the left one wins).
    pub fn worst(self, other: ServiceHealth) -> ServiceHealth {
        match (self, other) {
            (ServiceHealth::Suspended, _) | (_, ServiceHealth::Suspended) => {
                ServiceHealth::Suspended
            }
            (ServiceHealth::Degraded(r), _) => ServiceHealth::Degraded(r),
            (_, ServiceHealth::Degraded(r)) => ServiceHealth::Degraded(r),
            _ => ServiceHealth::Healthy,
        }
    }
}

impl fmt::Display for ServiceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceHealth::Healthy => f.write_str("healthy"),
            ServiceHealth::Degraded(r) => write!(f, "degraded: {r}"),
            ServiceHealth::Suspended => {
                f.write_str("suspended (durable log down until checkpoint)")
            }
        }
    }
}

/// How many times a failed durable fsync is retried before the log
/// suspends until the next checkpoint.
pub const IO_RETRY_MAX: u32 = 3;

/// Deterministic backoff before retry `attempt` (0-based): 1 ms, 2 ms,
/// 4 ms, … capped at 16 ms. No jitter — chaos schedules must replay
/// bit-identically.
pub fn io_retry_backoff(attempt: u32) -> Duration {
    Duration::from_millis(1u64 << attempt.min(4))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_orders_suspended_over_degraded_over_healthy() {
        let d = ServiceHealth::Degraded(DegradeReason::DeadlinePressure);
        assert_eq!(ServiceHealth::Healthy.worst(d), d);
        assert_eq!(d.worst(ServiceHealth::Suspended), ServiceHealth::Suspended);
        assert_eq!(
            ServiceHealth::Healthy.worst(ServiceHealth::Healthy),
            ServiceHealth::Healthy
        );
        // Between two degradations the left (primary) reason survives.
        let io = ServiceHealth::Degraded(DegradeReason::IoRetries);
        assert_eq!(d.worst(io), d);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let seq: Vec<u64> = (0..6)
            .map(|a| io_retry_backoff(a).as_millis() as u64)
            .collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 16, 16]);
    }
}
