//! Continuous tuning sessions — demo scenario 3.
//!
//! A thin designer-side wrapper around [`pgdesign_colt::ColtTuner`] that
//! owns the session INUM cache and accumulates the cost series the demo
//! plots ("our tool presents the change in system's performance accruing
//! from adopting the new suggested indexes").

use crate::designer::Designer;
use pgdesign_colt::{ColtConfig, ColtTuner, EpochReport};
use pgdesign_inum::Inum;
use pgdesign_query::ast::Query;
use std::fmt::Write as _;

/// A continuous-tuning session.
pub struct OnlineSession<'a> {
    tuner: ColtTuner<'a>,
    reports: Vec<EpochReport>,
    // Keeps the INUM alive for the tuner's lifetime.
    _inum: Box<Inum<'a>>,
}

impl<'a> OnlineSession<'a> {
    /// Start a session against a designer.
    pub fn new(designer: &'a Designer, config: ColtConfig) -> Self {
        let inum = Box::new(Inum::new(&designer.catalog, &designer.optimizer));
        // SAFETY: the tuner's reference points into the boxed INUM, whose
        // heap location is stable across moves of `OnlineSession`. The box
        // is stored in `_inum`, declared *after* `tuner`, so the tuner is
        // dropped first; nothing the tuner hands out borrows the INUM
        // beyond `&self` of this session.
        let inum_ref: &'a Inum<'a> = unsafe { &*(inum.as_ref() as *const Inum<'a>) };
        OnlineSession {
            tuner: ColtTuner::new(inum_ref, config),
            reports: Vec::new(),
            _inum: inum,
        }
    }

    /// Feed one query; epoch reports accumulate internally.
    pub fn observe(&mut self, query: Query) -> Option<&EpochReport> {
        if let Some(r) = self.tuner.observe(query) {
            self.reports.push(r);
            self.reports.last()
        } else {
            None
        }
    }

    /// Feed a batch of queries.
    pub fn observe_all<I: IntoIterator<Item = Query>>(&mut self, queries: I) {
        for q in queries {
            let _ = self.observe(q);
        }
    }

    /// Epoch reports so far.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// The tuner's current on-line design.
    pub fn current_design(&self) -> &pgdesign_catalog::design::PhysicalDesign {
        self.tuner.current_design()
    }

    /// Cumulative `(untuned, tuned)` workload cost across all epochs.
    pub fn cumulative_costs(&self) -> (f64, f64) {
        self.reports.iter().fold((0.0, 0.0), |(u, t), r| {
            (u + r.untuned_cost, t + r.tuned_cost)
        })
    }

    /// A per-epoch text table of the tuning trajectory. The `dropped`
    /// column counts candidates the what-if budget truncated out of the
    /// epoch's probe plan (no benefit evidence gathered).
    pub fn trajectory(&self) -> String {
        let mut s = String::from("epoch  untuned      tuned        builds  indexes  dropped\n");
        for r in &self.reports {
            let _ = writeln!(
                s,
                "{:>5}  {:>11.1}  {:>11.1}  {:>6.1}  {:>7}  {:>7}",
                r.epoch,
                r.untuned_cost,
                r.tuned_cost,
                r.build_cost,
                r.materialized.len(),
                r.candidates_dropped
            );
        }
        s
    }

    /// INUM / cost-matrix counters of the session — what `pgdesign online`
    /// prints after the trajectory (the on-line analogue of
    /// `recommend --stats`). Shows the persistent-matrix economics: one
    /// build, per-epoch cells computed vs reused, and total build time.
    pub fn tuning_stats(&self) -> crate::report::TuningStats {
        crate::report::TuningStats {
            inum: self._inum.stats(),
            matrix: self._inum.matrix_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::parse_query;

    #[test]
    fn online_session_accumulates_reports() {
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 5,
            ..Default::default()
        });
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(15));
        assert_eq!(s.reports().len(), 3);
        let (untuned, tuned) = s.cumulative_costs();
        assert!(untuned > 0.0 && tuned > 0.0);
        let text = s.trajectory();
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn tuned_eventually_beats_untuned() {
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 5,
            payback_horizon_epochs: 10.0,
            ..Default::default()
        });
        let q = parse_query(&d.catalog.schema, "SELECT ra FROM photoobj WHERE objid = 7").unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(40));
        let last = s.reports().last().unwrap();
        assert!(
            last.tuned_cost < last.untuned_cost / 10.0,
            "steady state should be indexed: {} vs {}",
            last.tuned_cost,
            last.untuned_cost
        );
        assert!(!s.current_design().indexes().is_empty());
    }
}
