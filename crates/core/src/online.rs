//! Continuous tuning sessions — demo scenario 3.
//!
//! A designer-side wrapper that pairs a [`pgdesign_colt::ColtTuner`] with
//! a [`TuningSession`]: the tuner's per-epoch profiling rotates work into
//! the *session's* persistent cost matrix, so everything COLT keeps warm —
//! resident epoch queries, registered candidates, their cells — is
//! immediately available to any other advisor. That is the "background
//! advisor" handoff: a DBA can call [`OnlineSession::advise`] mid-stream
//! and get an offline/joint recommendation computed against the warm
//! matrix (cells are *reused*, not rebuilt — watch
//! [`OnlineSession::tuning_stats`]'s `cells_reused`). The session also
//! accumulates the cost series the demo plots ("our tool presents the
//! change in system's performance accruing from adopting the new
//! suggested indexes").

use crate::designer::Designer;
use crate::health::{DegradeReason, ServiceHealth};
use crate::session::{Advisor, TuningSession};
use pgdesign_colt::{ColtConfig, ColtTuner, EpochMode, EpochReport, TunerState};
use pgdesign_query::ast::Query;
use pgdesign_query::Workload;
use std::fmt::Write as _;

/// Sidecar file (beside `matrix.pgds`) holding the COLT tuner's EWMA
/// profiling state and current design. Optional and version-gated: a
/// missing, corrupt, or version-skewed sidecar restores a cold tuner
/// (EWMAs re-warm within an epoch or two) — never an error.
const TUNER_SIDECAR: &str = "tuner.pgds";

/// A continuous-tuning session over a shared [`TuningSession`] matrix.
pub struct OnlineSession<'a> {
    tuner: ColtTuner<'a>,
    reports: Vec<EpochReport>,
    session: TuningSession<'a>,
}

impl<'a> OnlineSession<'a> {
    /// Start a session against a designer.
    pub fn new(designer: &'a Designer, config: ColtConfig) -> Self {
        let session = TuningSession::new(designer, Workload::new());
        // The tuner borrows only the designer's catalog/optimizer (true
        // `'a` data) — its cost calls go through the session matrix it is
        // handed per call, so it holds no reference into the session.
        let tuner = ColtTuner::new(&designer.catalog, &designer.optimizer, config);
        OnlineSession {
            tuner,
            reports: Vec::new(),
            session,
        }
    }

    /// Start a *durable* session backed by the state directory at `dir`:
    /// a restarted stream resumes on the previous run's resident matrix —
    /// no matrix build, recurring queries reuse their cells from the first
    /// epoch on (`tuning_stats().matrix` shows `builds == 0` and
    /// `cells_reused > 0`). The COLT tuner's profiling state (benefit
    /// EWMA, current design) rides along as an optional, version-gated
    /// sidecar snapshot: a restart restores design continuity when the
    /// sidecar is present and decodes, and falls back to a cold tuner
    /// (EWMAs re-warm within an epoch or two) when it is missing, corrupt,
    /// or written by an older version. See
    /// [`TuningSession::open_or_create_on`] for the matrix recovery
    /// contract.
    pub fn open_or_create(
        designer: &'a Designer,
        config: ColtConfig,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let session = TuningSession::open_or_create(designer, Workload::new(), dir)?;
        Ok(Self::assemble(designer, config, session))
    }

    /// [`Self::open_or_create`] over any
    /// [`pgdesign_durability::DurableStore`] (fault-injection tests pass a
    /// `MemStore`).
    pub fn open_or_create_on(
        designer: &'a Designer,
        config: ColtConfig,
        store: Box<dyn pgdesign_durability::DurableStore>,
    ) -> std::io::Result<Self> {
        let session = TuningSession::open_or_create_on(designer, Workload::new(), store)?;
        Ok(Self::assemble(designer, config, session))
    }

    /// Shared durable-open tail: build the tuner, then try the sidecar
    /// warm start. Decode failures of any kind mean a cold tuner.
    fn assemble(
        designer: &'a Designer,
        config: ColtConfig,
        mut session: TuningSession<'a>,
    ) -> Self {
        let mut tuner = ColtTuner::new(&designer.catalog, &designer.optimizer, config);
        if let Some(bytes) = session.read_sidecar(TUNER_SIDECAR) {
            match TunerState::decode(&bytes) {
                Ok(state) => tuner.restore_state(state),
                Err(e) => eprintln!("pgdesign: tuner sidecar unusable ({e}); starting cold"),
            }
        }
        OnlineSession {
            tuner,
            reports: Vec::new(),
            session,
        }
    }

    /// Feed one query; epoch reports accumulate internally. On a durable
    /// session, each epoch boundary (the only point the matrix mutates)
    /// syncs the journaled edits to the edit log before the report is
    /// returned — a crash between epochs replays to exactly the published
    /// epoch state.
    pub fn observe(&mut self, query: Query) -> Option<&EpochReport> {
        if let Some(r) = self.tuner.observe(query, self.session.matrix_mut()) {
            if self.session.is_durable() {
                if let Err(e) = self.session.sync_durable() {
                    eprintln!("pgdesign: durable sync failed ({e}); continuing in memory");
                }
                // Persist the tuner's profiling state beside the matrix.
                // Best-effort: a failed sidecar write only costs the next
                // restart a cold EWMA, never correctness.
                let state = self.tuner.export_state().encode();
                if let Err(e) = self.session.write_sidecar(TUNER_SIDECAR, &state) {
                    eprintln!("pgdesign: tuner sidecar write failed ({e}); continuing");
                }
            }
            self.reports.push(r);
            self.reports.last()
        } else {
            None
        }
    }

    /// Feed a batch of queries.
    pub fn observe_all<I: IntoIterator<Item = Query>>(&mut self, queries: I) {
        for q in queries {
            let _ = self.observe(q);
        }
    }

    /// The underlying tuning session (shared-matrix access).
    pub fn session(&mut self) -> &mut TuningSession<'a> {
        &mut self.session
    }

    /// A concurrent reader over the latest published snapshot of the
    /// session matrix (see [`TuningSession::reader`]). COLT publishes a
    /// generation at every epoch boundary, so readers follow the stream
    /// at epoch granularity without ever blocking it.
    pub fn reader(&self) -> crate::session::SessionReader {
        self.session.reader()
    }

    /// Run an advisor against the session's warm matrix — the
    /// background-advisor handoff of the redesigned API. The advisor sees
    /// the queries currently resident (the recently profiled epochs) and
    /// reuses the candidate cells COLT maintained, so an offline or joint
    /// recommendation mid-stream costs only the cells the stream did not
    /// already pay for.
    ///
    /// The reuse guarantee holds *at hand-off time*: once the stream
    /// resumes, COLT's next epoch rotation evicts candidates it does not
    /// track (including the advisor's leftovers) to keep per-epoch cell
    /// work bounded by workload drift — so batch advisor calls together
    /// rather than interleaving them one-per-epoch.
    pub fn advise<A: Advisor + ?Sized>(&mut self, advisor: &mut A) -> A::Report {
        self.session.advise(advisor)
    }

    /// Epoch reports so far.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// The tuner's current on-line design.
    pub fn current_design(&self) -> &pgdesign_catalog::design::PhysicalDesign {
        self.tuner.current_design()
    }

    /// Cumulative `(untuned, tuned)` workload cost across all epochs.
    pub fn cumulative_costs(&self) -> (f64, f64) {
        self.reports.iter().fold((0.0, 0.0), |(u, t), r| {
            (u + r.untuned_cost, t + r.tuned_cost)
        })
    }

    /// A per-epoch text table of the tuning trajectory. The `dropped`
    /// column counts candidates the what-if budget truncated out of the
    /// epoch's probe plan (no benefit evidence gathered).
    pub fn trajectory(&self) -> String {
        let mut s = String::from("epoch  untuned      tuned        builds  indexes  dropped\n");
        for r in &self.reports {
            let _ = writeln!(
                s,
                "{:>5}  {:>11.1}  {:>11.1}  {:>6.1}  {:>7}  {:>7}",
                r.epoch,
                r.untuned_cost,
                r.tuned_cost,
                r.build_cost,
                r.materialized.len(),
                r.candidates_dropped
            );
        }
        s
    }

    /// INUM / cost-matrix counters of the session — what `pgdesign online`
    /// prints after the trajectory (the on-line analogue of
    /// `recommend --stats`). Shows the persistent-matrix economics: one
    /// build, per-epoch cells computed vs reused, and total build time.
    pub fn tuning_stats(&self) -> crate::report::TuningStats {
        let mut stats = self.session.stats();
        stats.stale_generations = self.tuner.staleness_generations();
        stats.health = self.health();
        stats
    }

    /// The daemon's service health: the worst of the tuner's epoch ladder
    /// (stale generations, deadline-pressured epochs) and the session's
    /// durable-log condition.
    pub fn health(&self) -> ServiceHealth {
        let ladder = if self.tuner.staleness_generations() > 0 {
            ServiceHealth::Degraded(DegradeReason::StaleGenerations)
        } else if self.tuner.last_epoch_mode() == EpochMode::IncrementalOnly {
            ServiceHealth::Degraded(DegradeReason::DeadlinePressure)
        } else {
            ServiceHealth::Healthy
        };
        ladder.worst(self.session.health())
    }

    /// Bound (or unbound, with `None`) the wall-clock time any one epoch
    /// close may take; see `ColtConfig::epoch_deadline` and the
    /// degradation ladder on `ColtTuner::end_epoch`.
    pub fn set_epoch_deadline(&mut self, deadline: Option<std::time::Duration>) {
        self.tuner.set_epoch_deadline(deadline);
    }

    /// Inject the clock epoch deadlines are measured on (tests pass a
    /// manual or ticking clock for deterministic expiry).
    pub fn set_clock(&mut self, clock: std::sync::Arc<dyn crate::health::Clock>) {
        self.tuner.set_clock(clock);
    }

    /// How many consecutive epochs published nothing (readers are this
    /// many generations behind; zero when fresh).
    pub fn staleness_generations(&self) -> u64 {
        self.tuner.staleness_generations()
    }

    /// Deferred work carried to the next epoch: `(queries, candidates)`.
    pub fn pending_work(&self) -> (usize, usize) {
        self.tuner.pending_work()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{IndexAdvisor, JointAdvisor};
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::parse_query;

    #[test]
    fn online_session_accumulates_reports() {
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 5,
            ..Default::default()
        });
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(15));
        assert_eq!(s.reports().len(), 3);
        let (untuned, tuned) = s.cumulative_costs();
        assert!(untuned > 0.0 && tuned > 0.0);
        let text = s.trajectory();
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn tuned_eventually_beats_untuned() {
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 5,
            payback_horizon_epochs: 10.0,
            ..Default::default()
        });
        let q = parse_query(&d.catalog.schema, "SELECT ra FROM photoobj WHERE objid = 7").unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(40));
        let last = s.reports().last().unwrap();
        assert!(
            last.tuned_cost < last.untuned_cost / 10.0,
            "steady state should be indexed: {} vs {}",
            last.tuned_cost,
            last.untuned_cost
        );
        assert!(!s.current_design().indexes().is_empty());
    }

    #[test]
    fn offline_advice_mid_stream_reuses_the_warm_matrix() {
        // The acceptance pin for the background-advisor handoff: an
        // offline recommendation right after an online run must run on the
        // session's warm matrix — no new build, resident cells reused.
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 10,
            ..Default::default()
        });
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(30));
        let before = s.tuning_stats();
        assert_eq!(before.matrix.builds, 1, "one session-lifetime matrix");

        let rec = s.advise(&mut IndexAdvisor::default());
        let after = s.tuning_stats();
        assert_eq!(
            after.matrix.builds, before.matrix.builds,
            "the offline advisor must reuse the session matrix, not rebuild"
        );
        assert!(
            after.matrix.cells_reused > before.matrix.cells_reused,
            "the advisor's candidates overlap COLT's — their cells must be reused"
        );
        assert!(rec.cost <= rec.base_cost + 1e-6);
        assert!(
            !rec.indexes.is_empty(),
            "the resident point-lookup workload clearly wants an index"
        );

        // The stream continues unharmed after the handoff.
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(10));
        assert_eq!(s.reports().len(), 4);
    }

    #[test]
    fn durable_restart_resumes_without_a_build() {
        // The PR's acceptance pin: kill an online session mid-stream,
        // reopen on the same store, and the restarted stream's first epoch
        // runs entirely on restored cells — no matrix build at all.
        use pgdesign_durability::SharedMemStore;

        let d = Designer::new(sdss_catalog(0.01));
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        let config = || ColtConfig {
            epoch_length: 5,
            ..Default::default()
        };

        let disk = SharedMemStore::new();
        {
            let mut s = OnlineSession::open_or_create_on(&d, config(), Box::new(disk.clone()))
                .expect("first open");
            assert_eq!(
                s.tuning_stats().recovery.and_then(|r| r.cold_start),
                Some(crate::report::ColdStart::NoState)
            );
            // 9 epochs: enough publishes to cross the checkpoint
            // threshold, so the reopened state spans a snapshot *and* a
            // log tail; two queries are left mid-epoch (never published,
            // correctly absent after the "kill").
            s.observe_all(std::iter::repeat_with(|| q.clone()).take(47));
            assert_eq!(s.reports().len(), 9);
        } // kill -9: the session is dropped without any shutdown path

        let mut s = OnlineSession::open_or_create_on(&d, config(), Box::new(disk))
            .expect("reopen after kill");
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(5));
        let stats = s.tuning_stats();
        let recovery = stats.recovery.expect("durable session reports recovery");
        assert_eq!(recovery.cold_start, None, "second open must be warm");
        assert!(recovery.snapshot_cells_loaded > 0);
        assert!(recovery.log_records_replayed > 0);
        assert_eq!(stats.matrix.builds, 0, "restored matrix, no build");
        assert!(
            stats.matrix.cells_reused > 0,
            "the recurring query's cells come from the snapshot"
        );
    }

    #[test]
    fn transient_fsync_failures_are_retried_not_suspended() {
        use pgdesign_durability::{Failpoint, SharedMemStore};

        let d = Designer::new(sdss_catalog(0.01));
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        let disk = SharedMemStore::new();
        let mut s = OnlineSession::open_or_create_on(
            &d,
            ColtConfig {
                epoch_length: 5,
                ..Default::default()
            },
            Box::new(disk.clone()),
        )
        .expect("open");
        // Two consecutive fsync failures on the next epoch-boundary sync:
        // within the retry budget, so the log must ride it out.
        disk.lock().arm(Failpoint::TransientFsync { times: 2 });
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(5));
        let stats = s.tuning_stats();
        assert_eq!(
            stats.io_suspensions, 0,
            "transient failure must not suspend"
        );
        assert!(
            stats.io_retries >= 2,
            "the two injected failures must show as retries, got {}",
            stats.io_retries
        );
        // A later epoch syncs cleanly; by then a checkpoint has cleared the
        // recent-retries signal or the health shows the strain — either
        // way the daemon keeps publishing.
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(5));
        assert_eq!(s.reports().len(), 2);
        assert_ne!(s.health(), ServiceHealth::Suspended);
    }

    #[test]
    fn unretryable_append_error_suspends_until_checkpoint() {
        use pgdesign_durability::{Failpoint, SharedMemStore};

        let d = Designer::new(sdss_catalog(0.01));
        let q = parse_query(
            &d.catalog.schema,
            "SELECT ra FROM photoobj WHERE objid = 42",
        )
        .unwrap();
        let disk = SharedMemStore::new();
        let mut s = OnlineSession::open_or_create_on(
            &d,
            ColtConfig {
                epoch_length: 5,
                ..Default::default()
            },
            Box::new(disk.clone()),
        )
        .expect("open");
        // A short write downs the store entirely: the append is not
        // retryable (a partial frame may be on disk) and the healing
        // checkpoint cannot complete either — the log stays suspended.
        disk.lock().arm(Failpoint::ShortWrite { keep: 0 });
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(5));
        let stats = s.tuning_stats();
        assert_eq!(stats.health, ServiceHealth::Suspended);
        assert!(stats.io_suspensions >= 1);
        // Tuning itself continues in memory — no panic, reports flow.
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(5));
        assert_eq!(s.reports().len(), 2);
    }

    #[test]
    fn tuner_sidecar_restores_design_continuity_across_restart() {
        use pgdesign_durability::SharedMemStore;

        let d = Designer::new(sdss_catalog(0.01));
        let q = parse_query(&d.catalog.schema, "SELECT ra FROM photoobj WHERE objid = 7").unwrap();
        let config = || ColtConfig {
            epoch_length: 5,
            payback_horizon_epochs: 10.0,
            ..Default::default()
        };

        let disk = SharedMemStore::new();
        {
            let mut s = OnlineSession::open_or_create_on(&d, config(), Box::new(disk.clone()))
                .expect("first open");
            s.observe_all(std::iter::repeat_with(|| q.clone()).take(40));
            assert!(
                !s.current_design().indexes().is_empty(),
                "steady state materializes the objid index"
            );
        } // hard kill

        let s =
            OnlineSession::open_or_create_on(&d, config(), Box::new(disk.clone())).expect("reopen");
        assert!(
            !s.current_design().indexes().is_empty(),
            "the sidecar must restore the materialized design before any epoch runs"
        );

        // A corrupt sidecar degrades to a cold tuner, never an error.
        {
            use pgdesign_durability::DurableStore as _;
            let mut store = disk.lock();
            let len = store.read("tuner.pgds").unwrap().unwrap().len();
            store.corrupt("tuner.pgds", len / 2);
        }
        let cold = OnlineSession::open_or_create_on(&d, config(), Box::new(disk))
            .expect("open over corrupt sidecar");
        assert!(
            cold.current_design().indexes().is_empty(),
            "corrupt sidecar restores a cold tuner"
        );
    }

    #[test]
    fn joint_advice_mid_stream_works_too() {
        let d = Designer::new(sdss_catalog(0.01));
        let mut s = d.online_session(ColtConfig {
            epoch_length: 10,
            ..Default::default()
        });
        let q = parse_query(
            &d.catalog.schema,
            "SELECT objid, ra, dec FROM photoobj WHERE ra BETWEEN 100 AND 140",
        )
        .unwrap();
        s.observe_all(std::iter::repeat_with(|| q.clone()).take(20));
        let report = s.advise(&mut JointAdvisor::new(d.catalog.data_bytes() / 2));
        assert!(report.joint.cost <= report.joint.base_cost + 1e-6);
        assert_eq!(report.stats.matrix.builds, 1, "still one matrix");
    }
}
