//! The [`Designer`] façade and the offline (scenario 2) pipeline.

use crate::interactive::InteractiveSession;
use crate::online::OnlineSession;
use crate::report;
use crate::session::{
    IndexAdvisor, InteractionAdvisor, JointAdvisor, OfflineAdvisor, PartitionAdvisor, TuningSession,
};
use pgdesign_autopart::{AutoPartConfig, PartitionRecommendation};
use pgdesign_catalog::design::{Index, PhysicalDesign};
use pgdesign_catalog::Catalog;
use pgdesign_colt::ColtConfig;
use pgdesign_cophy::{CophyConfig, JointRecommendation, Recommendation};
use pgdesign_interaction::{InteractionAnalysis, InteractionGraph, Schedule};
use pgdesign_optimizer::{JoinControl, Optimizer};
use pgdesign_query::ast::Query;
use pgdesign_query::Workload;
use std::fmt;

/// The automated, interactive and portable DB designer.
///
/// Owns the catalog (schema + statistics) and the what-if optimizer; all
/// advisors run against these through per-operation INUM instances, so a
/// `Designer` is cheap to share behind `&self`.
#[derive(Debug, Clone)]
pub struct Designer {
    /// Schema, statistics and the materialized base design.
    pub catalog: Catalog,
    /// The what-if cost-based optimizer.
    pub optimizer: Optimizer,
}

impl Designer {
    /// A designer with default optimizer parameters.
    pub fn new(catalog: Catalog) -> Self {
        Designer {
            catalog,
            optimizer: Optimizer::new(),
        }
    }

    /// A designer with an explicit optimizer (cost params / join control).
    pub fn with_optimizer(catalog: Catalog, optimizer: Optimizer) -> Self {
        Designer { catalog, optimizer }
    }

    /// Restrict or re-enable join methods (the what-if join component).
    pub fn set_join_control(&mut self, control: JoinControl) {
        self.optimizer.control = control;
    }

    /// Start a bare tuning session — the shared-matrix substrate every
    /// other entry point runs on. Use this directly to interleave
    /// advisors ([`TuningSession::advise`]) over one warm matrix.
    pub fn tuning_session(&self, workload: Workload) -> TuningSession<'_> {
        TuningSession::new(self, workload)
    }

    /// Start an interactive what-if session (demo scenario 1) — a
    /// [`TuningSession`] view whose evaluations are pure matrix lookups.
    pub fn session(&self, workload: Workload) -> InteractiveSession<'_> {
        InteractiveSession::new(self, workload)
    }

    /// Start a continuous-tuning session (demo scenario 3) — COLT over a
    /// [`TuningSession`] matrix, with mid-stream advisor handoff
    /// ([`OnlineSession::advise`]).
    pub fn online_session(&self, config: ColtConfig) -> OnlineSession<'_> {
        OnlineSession::new(self, config)
    }

    /// Run the CoPhy index advisor alone (a one-shot
    /// [`crate::session::IndexAdvisor`] session).
    pub fn recommend_indexes(&self, workload: &Workload, config: CophyConfig) -> Recommendation {
        self.tuning_session(workload.clone())
            .advise(&mut IndexAdvisor::new(config))
    }

    /// Run the AutoPart partition advisor alone (a one-shot
    /// [`crate::session::PartitionAdvisor`] session).
    pub fn recommend_partitions(
        &self,
        workload: &Workload,
        config: AutoPartConfig,
    ) -> PartitionRecommendation {
        self.tuning_session(workload.clone())
            .advise(&mut PartitionAdvisor::new(config))
    }

    /// Analyze index interactions for a candidate set (a one-shot
    /// [`crate::session::InteractionAdvisor`] session).
    pub fn analyze_interactions(
        &self,
        workload: &Workload,
        indexes: &[Index],
    ) -> InteractionAnalysis {
        self.tuning_session(workload.clone())
            .advise(&mut InteractionAdvisor::new(indexes.to_vec()))
    }

    /// EXPLAIN a query under a design.
    pub fn explain(&self, design: &PhysicalDesign, query: &Query) -> String {
        let plan = self.optimizer.optimize(&self.catalog, design, query);
        plan.explain(&self.catalog.schema, query)
    }

    /// Estimated cost of a query under a design.
    pub fn cost(&self, design: &PhysicalDesign, query: &Query) -> f64 {
        self.optimizer.cost(&self.catalog, design, query)
    }

    /// The joint index + partition mode: one partition-aware cost matrix
    /// serves the greedy index selection and AutoPart's merge search under
    /// a single storage budget (`pgdesign recommend --joint`). A one-shot
    /// [`crate::session::JointAdvisor`] session.
    pub fn recommend_joint(&self, workload: &Workload, storage_budget_bytes: u64) -> JointReport {
        self.tuning_session(workload.clone())
            .advise(&mut JointAdvisor::new(storage_budget_bytes))
    }

    /// The full offline pipeline (demo scenario 2): CoPhy indexes +
    /// AutoPart partitions under a shared storage budget, the interaction
    /// graph over the suggested indexes, and an interaction-aware
    /// materialization schedule (with the naive order for comparison).
    /// A one-shot [`crate::session::OfflineAdvisor`] session: every stage
    /// — selection, combination, interactions, scheduling — costs through
    /// the session's single matrix.
    pub fn recommend(&self, workload: &Workload, storage_budget_bytes: u64) -> OfflineReport {
        self.tuning_session(workload.clone())
            .advise(&mut OfflineAdvisor::new(storage_budget_bytes))
    }
}

/// What the joint index + partition mode shows the user.
#[derive(Debug, Clone)]
pub struct JointReport {
    /// The joint recommendation.
    pub joint: JointRecommendation,
    /// Human-readable names of the suggested indexes (schema-resolved).
    pub index_display: Vec<String>,
    /// INUM / cost-matrix counters captured at the end of the run.
    pub stats: crate::report::TuningStats,
}

impl fmt::Display for JointReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        report::render_joint(self, f)
    }
}

/// Everything scenario 2 shows the user.
#[derive(Debug, Clone)]
pub struct OfflineReport {
    /// The CoPhy index recommendation.
    pub indexes: Recommendation,
    /// The AutoPart partition recommendation.
    pub partitions: PartitionRecommendation,
    /// The adopted design (indexes ∪ partitions, or the better component
    /// alone when combining erodes benefit).
    pub design: PhysicalDesign,
    /// Workload cost under the empty design.
    pub base_cost: f64,
    /// Workload cost under the adopted design.
    pub combined_cost: f64,
    /// Per-query `(base, adopted)` costs.
    pub per_query: Vec<(f64, f64)>,
    /// Interaction analysis over the suggested indexes.
    pub analysis: InteractionAnalysis,
    /// The Figure-2 interaction graph.
    pub graph: InteractionGraph,
    /// Interaction-aware materialization schedule.
    pub schedule: Schedule,
    /// The naive (recommendation-order) schedule for comparison.
    pub naive_schedule: Schedule,
    /// Human-readable names of the suggested indexes (schema-resolved).
    pub index_display: Vec<String>,
    /// INUM / cost-matrix counters captured at the end of the run (what
    /// `pgdesign recommend --stats` prints).
    pub stats: crate::report::TuningStats,
}

impl OfflineReport {
    /// Average workload benefit as a *signed* fraction of the base cost:
    /// negative when the adopted design costs more than the base (the
    /// advisors guard against handing one back, but a regression must
    /// never be masked by clamping). A degenerate (non-positive) base
    /// cost yields 0.0 since no meaningful fraction exists.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        (self.base_cost - self.combined_cost) / self.base_cost
    }
}

impl fmt::Display for OfflineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        report::render_offline(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_query::generators::sdss_workload;
    use pgdesign_query::parse_query;

    fn designer() -> Designer {
        Designer::new(sdss_catalog(0.01))
    }

    #[test]
    fn offline_pipeline_produces_consistent_report() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 77);
        let budget = d.catalog.data_bytes() / 2;
        let r = d.recommend(&w, budget);
        assert!(r.combined_cost <= r.base_cost);
        assert!(r.combined_cost <= r.indexes.cost + 1e-6);
        assert!(r.combined_cost <= r.partitions.cost + 1e-6);
        assert_eq!(r.per_query.len(), 9);
        assert_eq!(r.schedule.order.len(), r.indexes.indexes.len());
        assert!(r.schedule.area <= r.naive_schedule.area + 1e-6);
        assert!(r.average_benefit() > 0.0);
    }

    #[test]
    fn report_renders_panels() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 78);
        let r = d.recommend(&w, d.catalog.data_bytes() / 2);
        let text = r.to_string();
        assert!(text.contains("Suggested indexes"));
        assert!(text.contains("Average workload benefit"));
        assert!(text.contains("Materialization schedule"));
        assert!(text.contains("Q1"));
    }

    #[test]
    fn explain_and_cost_agree() {
        let d = designer();
        let q = parse_query(&d.catalog.schema, "SELECT ra FROM photoobj WHERE objid = 9").unwrap();
        let design = PhysicalDesign::empty();
        let text = d.explain(&design, &q);
        assert!(text.contains("Seq Scan"));
        assert!(d.cost(&design, &q) > 0.0);
    }

    #[test]
    fn join_control_flows_into_designer() {
        let mut d = designer();
        d.set_join_control(JoinControl {
            hash: false,
            merge: true,
            nestloop: false,
        });
        let q = parse_query(
            &d.catalog.schema,
            "SELECT p.ra FROM photoobj p, specobj s WHERE p.objid = s.bestobjid",
        )
        .unwrap();
        let text = d.explain(&PhysicalDesign::empty(), &q);
        assert!(text.contains("Merge Join"), "{text}");
    }

    #[test]
    fn tight_budget_shrinks_recommendation() {
        let d = designer();
        let w = sdss_workload(&d.catalog, 9, 79);
        let generous = d.recommend(&w, d.catalog.data_bytes());
        let tight = d.recommend(&w, d.catalog.data_bytes() / 50);
        assert!(tight.indexes.total_index_bytes <= generous.indexes.total_index_bytes);
        assert!(tight.indexes.total_index_bytes <= d.catalog.data_bytes() / 50);
    }
}
