//! Interactive what-if sessions — demo scenario 1.
//!
//! "The DBA manually selects the combination of design features and the
//! tool determines the benefit of using that combination." The session is
//! a thin *view* over a [`TuningSession`]: every `add_index` /
//! `remove_index` / `set_vertical` / `set_horizontal` maps to a candidate
//! registration ([`pgdesign_inum::CostMatrix::add_candidate`] /
//! `register_fragment` / `register_split`) plus bitset toggles on a
//! [`JointConfig`], so [`InteractiveSession::evaluate`] and
//! [`InteractiveSession::interaction_graph`] are **pure matrix lookups** —
//! zero per-design [`pgdesign_inum::Inum::cost`] calls after the session's
//! warm-up build, which is what makes re-evaluation instant while the
//! user explores. Removing a structure only clears its bit: the cells
//! stay resident, so toggling it back is free.

use crate::designer::Designer;
use crate::report::TuningStats;
use crate::session::{Advisor, TuningSession};
use pgdesign_catalog::design::{
    HorizontalPartitioning, Index, PhysicalDesign, VerticalPartitioning,
};
use pgdesign_catalog::schema::TableId;
use pgdesign_interaction::{analyze_on, InteractionConfig, InteractionGraph};
use pgdesign_inum::{query_cell_key, JointConfig};
use pgdesign_query::Workload;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Benefit numbers for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBenefit {
    /// Cost under the base (empty) design.
    pub base_cost: f64,
    /// Cost under the session's what-if design.
    pub whatif_cost: f64,
}

impl QueryBenefit {
    /// Relative benefit in `[0, 1]` (negative improvements clamp to 0 —
    /// this is the per-query display number; the report-level
    /// [`BenefitReport::average_benefit`] is signed).
    pub fn benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        ((self.base_cost - self.whatif_cost) / self.base_cost).max(0.0)
    }
}

/// The full evaluation of a what-if design against the workload.
#[derive(Debug, Clone)]
pub struct BenefitReport {
    /// Total workload cost under the base design.
    pub base_cost: f64,
    /// Total workload cost under the what-if design.
    pub whatif_cost: f64,
    /// Per-query benefits, aligned with the session workload.
    pub per_query: Vec<QueryBenefit>,
    /// Bytes the hypothetical indexes would occupy if built.
    pub index_bytes: u64,
    /// Bytes of replicated storage from vertical partitionings.
    pub replication_bytes: u64,
}

impl BenefitReport {
    /// Average workload benefit as a *signed* fraction of the base cost:
    /// negative when the what-if design costs more than the base (a DBA
    /// exploring a bad combination must see the regression, not a clamped
    /// zero). A degenerate (non-positive) base cost yields 0.0 since no
    /// meaningful fraction exists.
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        (self.base_cost - self.whatif_cost) / self.base_cost
    }
}

impl fmt::Display for BenefitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload cost: {:.1} -> {:.1}",
            self.base_cost, self.whatif_cost
        )?;
        writeln!(
            f,
            "average workload benefit: {:.1}%",
            100.0 * self.average_benefit()
        )?;
        writeln!(
            f,
            "hypothetical storage: {:.1} MiB indexes, {:.1} MiB replication",
            self.index_bytes as f64 / (1024.0 * 1024.0),
            self.replication_bytes as f64 / (1024.0 * 1024.0)
        )?;
        for (i, q) in self.per_query.iter().enumerate() {
            writeln!(
                f,
                "  Q{:<3} {:>12.1} -> {:>12.1}   ({:>5.1}%)",
                i + 1,
                q.base_cost,
                q.whatif_cost,
                100.0 * q.benefit()
            )?;
        }
        Ok(())
    }
}

/// An interactive what-if session: a [`TuningSession`] view whose design
/// edits are bitset toggles and whose evaluations are matrix lookups.
pub struct InteractiveSession<'a> {
    session: TuningSession<'a>,
    /// The what-if design as a joint configuration over the session matrix.
    cfg: JointConfig,
    /// Fragment ids currently selected per vertically-partitioned table.
    vertical_of: HashMap<TableId, Vec<usize>>,
    /// Split id currently selected per horizontally-partitioned table.
    horizontal_of: HashMap<TableId, usize>,
    /// Empty-design base cost per query slot, computed once at session
    /// start — base costs are design-independent, so no evaluation
    /// recomputes them. Keyed by slot id, guarded by the query's
    /// cell-identity key, and gated on the matrix's rotation generation:
    /// slot ids are recycled after `retire_query`, so a query rotated in
    /// through the [`TuningSession`] escape hatch must not inherit the
    /// retired occupant's cached cost. While the generation is unchanged
    /// (the common case — nothing rotates in an interactive session) the
    /// keys are not even rechecked.
    base_costs: HashMap<usize, (u64, f64)>,
    /// Matrix rotation generation the cache was captured at.
    base_generation: u64,
}

impl<'a> InteractiveSession<'a> {
    /// Start a session over a workload. The one-off warm-up builds the
    /// skeleton cache and base cells; the catalog's base design (if any)
    /// is registered and selected as the starting configuration.
    pub fn new(designer: &'a Designer, workload: Workload) -> Self {
        Self::over(TuningSession::new(designer, workload))
    }

    /// Start an interactive session over a *durable* [`TuningSession`]
    /// (state directory at `dir`): a reopened session finds the previous
    /// run's cells resident — the warm-up builds nothing for recurring
    /// queries — and every published exploration step is journaled for the
    /// next open. See [`TuningSession::open_or_create_on`] for the
    /// recovery contract.
    pub fn open_or_create(
        designer: &'a Designer,
        workload: Workload,
        dir: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        Ok(Self::over(TuningSession::open_or_create(
            designer, workload, dir,
        )?))
    }

    fn over(session: TuningSession<'a>) -> Self {
        let matrix = session.matrix();
        let cfg = matrix.empty_joint();
        let empty = matrix.empty_joint();
        let base_costs = matrix
            .active_query_ids()
            .map(|qi| {
                let key = query_cell_key(matrix.workload().query(qi));
                (qi, (key, matrix.joint_cost(qi, &empty)))
            })
            .collect();
        let base_generation = matrix.generation();
        let mut s = InteractiveSession {
            session,
            cfg,
            vertical_of: HashMap::new(),
            horizontal_of: HashMap::new(),
            base_costs,
            base_generation,
        };
        s.select_base_design();
        s
    }

    /// Register and select the catalog's base design.
    fn select_base_design(&mut self) {
        let base = self.session.designer().catalog.base_design.clone();
        for idx in base.indexes() {
            let id = self.session.matrix_mut().add_candidate(idx);
            self.cfg.indexes.insert(id);
        }
        for vp in base.verticals() {
            self.set_vertical(vp.clone());
        }
        for hp in base.horizontals() {
            self.set_horizontal(hp.clone());
        }
    }

    /// The session's current hypothetical design (derived from the
    /// configuration; per table, the selected fragments *are* the
    /// vertical partitioning).
    pub fn design(&self) -> PhysicalDesign {
        self.session.matrix().joint_design_of(&self.cfg)
    }

    /// The session workload.
    pub fn workload(&self) -> &Workload {
        self.session.workload()
    }

    /// The underlying tuning session (shared-matrix access, e.g. for
    /// running an advisor against the same warm cells).
    pub fn tuning_session(&mut self) -> &mut TuningSession<'a> {
        &mut self.session
    }

    /// Run an advisor against the session's matrix — the DBA asking the
    /// automatic half of the tool for a suggestion without leaving the
    /// interactive session (everything explored so far stays warm).
    pub fn advise<A: Advisor + ?Sized>(&mut self, advisor: &mut A) -> A::Report {
        self.session.advise(advisor)
    }

    /// INUM / cost-matrix counters of the session.
    pub fn tuning_stats(&self) -> TuningStats {
        self.session.stats()
    }

    /// A concurrent reader over the latest published snapshot of the
    /// session matrix (see [`TuningSession::reader`]): what-if lookups
    /// from other threads while this view keeps exploring.
    pub fn reader(&self) -> crate::session::SessionReader {
        self.session.reader()
    }

    /// Publish the current matrix state for concurrent readers (see
    /// [`TuningSession::publish`]); returns the new generation.
    pub fn publish(&mut self) -> u64 {
        self.session.publish()
    }

    /// Add a what-if index; returns false if it was already present.
    /// Registers the candidate on the session matrix (its cells are
    /// computed once; re-adding a previously removed index is free) and
    /// sets its bit.
    pub fn add_index(&mut self, index: Index) -> bool {
        let id = self.session.matrix_mut().add_candidate(&index);
        if self.cfg.indexes.contains(id) {
            return false;
        }
        self.cfg.indexes.insert(id);
        true
    }

    /// Add a what-if index from column *names*, the way a DBA would type
    /// it. Errors on unknown names.
    pub fn add_index_by_name(&mut self, table: &str, columns: &[&str]) -> Result<bool, String> {
        let schema = &self.session.designer().catalog.schema;
        let t = schema
            .table_by_name(table)
            .ok_or_else(|| format!("unknown table {table:?}"))?;
        let cols: Result<Vec<u16>, String> = columns
            .iter()
            .map(|c| {
                t.column_by_name(c)
                    .ok_or_else(|| format!("unknown column {table}.{c}"))
            })
            .collect();
        Ok(self.add_index(Index::new(t.id, cols?)))
    }

    /// Remove a what-if index (clears its bit; the candidate's cells stay
    /// resident so re-adding it later is free). Returns false if it was
    /// not selected.
    pub fn remove_index(&mut self, index: &Index) -> bool {
        match self.session.matrix().candidate_id(index) {
            Some(id) if self.cfg.indexes.contains(id) => {
                self.cfg.indexes.remove(id);
                true
            }
            _ => false,
        }
    }

    /// Install a what-if vertical partitioning (replacing any previous
    /// partitioning of the same table): each column group is registered as
    /// a fragment candidate and selected.
    pub fn set_vertical(&mut self, vp: VerticalPartitioning) {
        self.clear_vertical(vp.table);
        let mut ids = Vec::with_capacity(vp.groups.len());
        for group in &vp.groups {
            let id = self.session.matrix_mut().register_fragment(vp.table, group);
            self.cfg.fragments.insert(id);
            ids.push(id);
        }
        self.vertical_of.insert(vp.table, ids);
    }

    /// Remove the what-if vertical partitioning of a table, if any.
    pub fn clear_vertical(&mut self, table: TableId) {
        if let Some(ids) = self.vertical_of.remove(&table) {
            for id in ids {
                self.cfg.fragments.remove(id);
            }
        }
    }

    /// Install a what-if horizontal partitioning (replacing any previous
    /// split of the same table).
    pub fn set_horizontal(&mut self, hp: HorizontalPartitioning) {
        self.clear_horizontal(hp.table);
        let table = hp.table;
        let id = self.session.matrix_mut().register_split(hp);
        self.cfg.splits.insert(id);
        self.horizontal_of.insert(table, id);
    }

    /// Remove the what-if horizontal partitioning of a table, if any.
    pub fn clear_horizontal(&mut self, table: TableId) {
        if let Some(id) = self.horizontal_of.remove(&table) {
            self.cfg.splits.remove(id);
        }
    }

    /// Reset to the catalog's base design (bitset clears only — every
    /// explored structure's cells stay resident for instant re-adding).
    pub fn reset(&mut self) {
        self.cfg.indexes.clear();
        self.cfg.fragments.clear();
        self.cfg.splits.clear();
        self.vertical_of.clear();
        self.horizontal_of.clear();
        self.select_base_design();
    }

    /// Evaluate the current what-if design against the workload — pure
    /// matrix lookups (base costs were computed once at session start; the
    /// what-if side is one [`pgdesign_inum::CostMatrix::joint_cost`]
    /// lookup per query).
    pub fn evaluate(&self) -> BenefitReport {
        let matrix = self.session.matrix();
        let empty = matrix.empty_joint();
        // Unchanged generation ⇒ every slot id still denotes the query it
        // was cached for, so the hot path is a plain map hit. After a
        // rotation through the session escape hatch, cached entries are
        // revalidated by cell key (a recycled slot id must not inherit the
        // retired occupant's cost) and misses cost one extra lookup.
        let rotated = matrix.generation() != self.base_generation;
        let per_query: Vec<QueryBenefit> = matrix
            .active_query_ids()
            .map(|qi| {
                let cached = self.base_costs.get(&qi).copied();
                let base_cost = match cached {
                    Some((_, cost)) if !rotated => cost,
                    Some((k, cost)) if k == query_cell_key(matrix.workload().query(qi)) => cost,
                    _ => matrix.joint_cost(qi, &empty),
                };
                QueryBenefit {
                    base_cost,
                    whatif_cost: matrix.joint_cost(qi, &self.cfg),
                }
            })
            .collect();
        let weights: Vec<f64> = matrix
            .active_query_ids()
            .map(|qi| matrix.query_weight(qi))
            .collect();
        let base_cost = weights
            .iter()
            .zip(&per_query)
            .map(|(w, b)| w * b.base_cost)
            .sum();
        let whatif_cost = weights
            .iter()
            .zip(&per_query)
            .map(|(w, b)| w * b.whatif_cost)
            .sum();
        let catalog = &self.session.designer().catalog;
        let design = self.design();
        BenefitReport {
            base_cost,
            whatif_cost,
            per_query,
            index_bytes: design.index_bytes(&catalog.schema, &catalog.stats),
            replication_bytes: design.replication_bytes(&catalog.schema, &catalog.stats),
        }
    }

    /// The interaction graph over the session's what-if indexes (Fig 2) —
    /// the `2^k` subset sweep runs on the session matrix's resident cells.
    pub fn interaction_graph(&self) -> InteractionGraph {
        let ids: Vec<usize> = self.cfg.indexes.ids().collect();
        let analysis = analyze_on(self.session.matrix(), &ids, &InteractionConfig::default());
        analysis.graph()
    }

    /// EXPLAIN one workload query under the what-if design.
    /// `query_index` is positional over the *active* queries (the same
    /// numbering [`Self::evaluate`]'s per-query rows use).
    pub fn explain(&self, query_index: usize) -> String {
        let matrix = self.session.matrix();
        let qid = matrix
            .active_query_ids()
            .nth(query_index)
            .expect("query_index within the active workload");
        let q = matrix.workload().query(qid);
        self.session.designer().explain(&self.design(), q)
    }

    /// "Save the rewritten queries for the new table partitions": a report
    /// of which fragments each query reads under the session's vertical
    /// partitionings.
    pub fn fragment_report(&self) -> String {
        let schema = &self.session.designer().catalog.schema;
        let design = self.design();
        let mut out = String::new();
        let matrix = self.session.matrix();
        // Active queries only, numbered like evaluate()'s per-query rows
        // (the workload mirror may hold stale retired slots).
        for (qi, qid) in matrix.active_query_ids().enumerate() {
            let q = matrix.workload().query(qid);
            for slot in 0..q.slot_count() {
                let table = q.table_of(slot);
                let Some(vp) = design.vertical(table) else {
                    continue;
                };
                let tdef = schema.table(table);
                let needed = if q.select_star {
                    (0..tdef.width()).collect()
                } else {
                    q.columns_used(slot)
                };
                let frags = vp.fragments_for(&needed);
                let _ = writeln!(
                    out,
                    "Q{} reads {} fragment(s) of {}: {}",
                    qi + 1,
                    frags.len(),
                    tdef.name,
                    frags
                        .iter()
                        .map(|&fi| {
                            let cols: Vec<&str> = vp.groups[fi]
                                .iter()
                                .map(|&c| tdef.column(c).name.as_str())
                                .collect();
                            format!("({})", cols.join(", "))
                        })
                        .collect::<Vec<_>>()
                        .join(" + ")
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_query::parse_query;

    fn setup() -> (Designer, Workload) {
        let d = Designer::new(sdss_catalog(0.01));
        let sqls = [
            "SELECT ra, dec FROM photoobj WHERE objid = 77",
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15",
            "SELECT ra FROM photoobj WHERE ra BETWEEN 100 AND 110",
        ];
        let w = Workload::from_queries(
            sqls.iter()
                .map(|s| parse_query(&d.catalog.schema, s).unwrap()),
        );
        (d, w)
    }

    #[test]
    fn whatif_indexes_show_benefit_without_materialization() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let before = s.evaluate();
        assert_eq!(before.average_benefit(), 0.0);
        assert!(s.add_index_by_name("photoobj", &["objid"]).unwrap());
        let after = s.evaluate();
        assert!(after.average_benefit() > 0.0);
        assert!(
            after.per_query[0].benefit() > 0.9,
            "point query: {:?}",
            after.per_query[0]
        );
        assert!(after.index_bytes > 0, "sizes are real, not zero");
    }

    #[test]
    fn evaluate_issues_zero_inum_cost_calls_after_warmup() {
        // The acceptance pin for the TuningSession redesign: once the
        // session is warm, every evaluation — through arbitrary index and
        // partition toggles, including the interaction graph — is pure
        // matrix lookups.
        let (d, w) = setup();
        let mut s = d.session(w);
        let calls = s.tuning_stats().inum.cost_calls;
        let lookups_before = s.tuning_stats().matrix.lookups;
        s.evaluate();
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        s.add_index_by_name("photoobj", &["type", "r"]).unwrap();
        s.evaluate();
        s.remove_index(&Index::new(TableId(0), vec![0]));
        s.evaluate();
        s.set_vertical(VerticalPartitioning::new(
            TableId(0),
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        s.evaluate();
        s.interaction_graph();
        assert_eq!(
            s.tuning_stats().inum.cost_calls,
            calls,
            "interactive evaluation must never fall back to per-design Inum::cost"
        );
        assert!(
            s.tuning_stats().matrix.lookups > lookups_before,
            "evaluations must register as matrix lookups"
        );
    }

    #[test]
    fn base_costs_are_computed_once_per_session() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let first = s.evaluate();
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        // Lookups per evaluate: one per query for the what-if side only —
        // the base side is served from the session-start cache.
        let lookups_before = s.tuning_stats().matrix.lookups;
        let second = s.evaluate();
        let per_eval = s.tuning_stats().matrix.lookups - lookups_before;
        assert_eq!(
            per_eval as usize,
            s.workload().len(),
            "evaluate must look up only the what-if side, not re-derive base costs"
        );
        for (a, b) in first.per_query.iter().zip(&second.per_query) {
            assert_eq!(
                a.base_cost, b.base_cost,
                "base costs are design-independent"
            );
        }
    }

    #[test]
    fn removed_structures_reevaluate_instantly() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        let with_index = s.evaluate();
        let photo = TableId(0);
        assert!(s.remove_index(&Index::new(photo, vec![0])));
        let without = s.evaluate();
        assert!(without.whatif_cost > with_index.whatif_cost);
        // Re-adding hits the resident cells: zero new cells, reuse counted.
        let cells_before = s.tuning_stats().matrix.cells;
        let reused_before = s.tuning_stats().matrix.cells_reused;
        assert!(s.add_index_by_name("photoobj", &["objid"]).unwrap());
        assert_eq!(s.tuning_stats().matrix.cells, cells_before);
        assert!(s.tuning_stats().matrix.cells_reused > reused_before);
        let again = s.evaluate();
        assert_eq!(again.whatif_cost, with_index.whatif_cost);
    }

    #[test]
    fn add_index_by_name_errors_on_unknown() {
        let (d, w) = setup();
        let mut s = d.session(w);
        assert!(s.add_index_by_name("nope", &["x"]).is_err());
        assert!(s.add_index_by_name("photoobj", &["nope"]).is_err());
    }

    #[test]
    fn reset_restores_base_design() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        assert_eq!(s.design().index_count(), 1);
        s.reset();
        assert_eq!(s.design().index_count(), 0);
    }

    #[test]
    fn interaction_graph_over_session_indexes() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["type", "r"]).unwrap();
        s.add_index_by_name("photoobj", &["r", "type"]).unwrap();
        let g = s.interaction_graph();
        assert_eq!(g.indexes.len(), 2);
        assert!(g.edge_count() >= 1, "competing indexes should interact");
    }

    #[test]
    fn fragment_report_lists_partitions() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let photo = TableId(0);
        s.set_vertical(VerticalPartitioning::new(
            photo,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let report = s.fragment_report();
        assert!(
            report.contains("Q1 reads 1 fragment(s) of photoobj"),
            "{report}"
        );
        assert!(report.contains("objid"));
    }

    #[test]
    fn set_vertical_replaces_previous_partitioning() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let photo = TableId(0);
        s.set_vertical(VerticalPartitioning::new(
            photo,
            vec![vec![0, 1], (2..16).collect()],
        ));
        s.set_vertical(VerticalPartitioning::new(
            photo,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let vp = s.design();
        let vp = vp.vertical(photo).expect("partitioned");
        assert_eq!(vp.groups.len(), 2, "{:?}", vp.groups);
        assert!(vp.is_complete(16));
        s.clear_vertical(photo);
        assert!(s.design().vertical(photo).is_none());
    }

    #[test]
    fn explain_uses_whatif_design() {
        let (d, w) = setup();
        let mut s = d.session(w);
        assert!(s.explain(0).contains("Seq Scan"));
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        assert!(s.explain(0).contains("Index"), "{}", s.explain(0));
    }

    #[test]
    fn report_display_is_readable() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        let text = s.evaluate().to_string();
        assert!(text.contains("average workload benefit"));
        assert!(text.contains("Q1"));
    }
}
