//! Interactive what-if sessions — demo scenario 1.
//!
//! "The DBA manually selects the combination of design features and the
//! tool determines the benefit of using that combination." A session holds
//! a workload and a hypothetical design under construction; every
//! evaluation is pure what-if (nothing is ever materialized) and runs
//! through a session-lifetime INUM cache, so repeated evaluations while
//! the user explores stay interactive.

use crate::designer::Designer;
use pgdesign_catalog::design::{
    HorizontalPartitioning, Index, PhysicalDesign, VerticalPartitioning,
};
use pgdesign_interaction::{analyze, InteractionConfig, InteractionGraph};
use pgdesign_inum::Inum;
use pgdesign_query::Workload;
use std::fmt;
use std::fmt::Write as _;

/// Benefit numbers for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBenefit {
    /// Cost under the base (empty) design.
    pub base_cost: f64,
    /// Cost under the session's what-if design.
    pub whatif_cost: f64,
}

impl QueryBenefit {
    /// Relative benefit in `[0, 1]` (negative improvements clamp to 0).
    pub fn benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        ((self.base_cost - self.whatif_cost) / self.base_cost).max(0.0)
    }
}

/// The full evaluation of a what-if design against the workload.
#[derive(Debug, Clone)]
pub struct BenefitReport {
    /// Total workload cost under the base design.
    pub base_cost: f64,
    /// Total workload cost under the what-if design.
    pub whatif_cost: f64,
    /// Per-query benefits, aligned with the session workload.
    pub per_query: Vec<QueryBenefit>,
    /// Bytes the hypothetical indexes would occupy if built.
    pub index_bytes: u64,
    /// Bytes of replicated storage from vertical partitionings.
    pub replication_bytes: u64,
}

impl BenefitReport {
    /// Average workload benefit ("the average workload benefit and the
    /// individual queries benefits ... are computed in a unified
    /// approach").
    pub fn average_benefit(&self) -> f64 {
        if self.base_cost <= 0.0 {
            return 0.0;
        }
        ((self.base_cost - self.whatif_cost) / self.base_cost).max(0.0)
    }
}

impl fmt::Display for BenefitReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "workload cost: {:.1} -> {:.1}",
            self.base_cost, self.whatif_cost
        )?;
        writeln!(
            f,
            "average workload benefit: {:.1}%",
            100.0 * self.average_benefit()
        )?;
        writeln!(
            f,
            "hypothetical storage: {:.1} MiB indexes, {:.1} MiB replication",
            self.index_bytes as f64 / (1024.0 * 1024.0),
            self.replication_bytes as f64 / (1024.0 * 1024.0)
        )?;
        for (i, q) in self.per_query.iter().enumerate() {
            writeln!(
                f,
                "  Q{:<3} {:>12.1} -> {:>12.1}   ({:>5.1}%)",
                i + 1,
                q.base_cost,
                q.whatif_cost,
                100.0 * q.benefit()
            )?;
        }
        Ok(())
    }
}

/// An interactive what-if session.
pub struct InteractiveSession<'a> {
    designer: &'a Designer,
    inum: Inum<'a>,
    workload: Workload,
    whatif: PhysicalDesign,
}

impl<'a> InteractiveSession<'a> {
    /// Start a session over a workload.
    pub fn new(designer: &'a Designer, workload: Workload) -> Self {
        let inum = Inum::new(&designer.catalog, &designer.optimizer);
        inum.prepare_workload(&workload);
        InteractiveSession {
            designer,
            inum,
            workload,
            whatif: designer.catalog.base_design.clone(),
        }
    }

    /// The session's current hypothetical design.
    pub fn design(&self) -> &PhysicalDesign {
        &self.whatif
    }

    /// The session workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Add a what-if index; returns false if it was already present.
    pub fn add_index(&mut self, index: Index) -> bool {
        self.whatif.add_index(index)
    }

    /// Add a what-if index from column *names*, the way a DBA would type
    /// it. Errors on unknown names.
    pub fn add_index_by_name(&mut self, table: &str, columns: &[&str]) -> Result<bool, String> {
        let schema = &self.designer.catalog.schema;
        let t = schema
            .table_by_name(table)
            .ok_or_else(|| format!("unknown table {table:?}"))?;
        let cols: Result<Vec<u16>, String> = columns
            .iter()
            .map(|c| {
                t.column_by_name(c)
                    .ok_or_else(|| format!("unknown column {table}.{c}"))
            })
            .collect();
        Ok(self.whatif.add_index(Index::new(t.id, cols?)))
    }

    /// Remove a what-if index.
    pub fn remove_index(&mut self, index: &Index) -> bool {
        self.whatif.remove_index(index)
    }

    /// Install a what-if vertical partitioning.
    pub fn set_vertical(&mut self, vp: VerticalPartitioning) {
        self.whatif.set_vertical(vp);
    }

    /// Install a what-if horizontal partitioning.
    pub fn set_horizontal(&mut self, hp: HorizontalPartitioning) {
        self.whatif.set_horizontal(hp);
    }

    /// Reset to the catalog's base design.
    pub fn reset(&mut self) {
        self.whatif = self.designer.catalog.base_design.clone();
    }

    /// Evaluate the current what-if design against the workload.
    pub fn evaluate(&self) -> BenefitReport {
        let empty = PhysicalDesign::empty();
        let per_query: Vec<QueryBenefit> = self
            .workload
            .iter()
            .map(|(q, _)| QueryBenefit {
                base_cost: self.inum.cost(&empty, q),
                whatif_cost: self.inum.cost(&self.whatif, q),
            })
            .collect();
        let base_cost = self
            .workload
            .iter()
            .zip(&per_query)
            .map(|((_, w), b)| w * b.base_cost)
            .sum();
        let whatif_cost = self
            .workload
            .iter()
            .zip(&per_query)
            .map(|((_, w), b)| w * b.whatif_cost)
            .sum();
        let catalog = &self.designer.catalog;
        BenefitReport {
            base_cost,
            whatif_cost,
            per_query,
            index_bytes: self.whatif.index_bytes(&catalog.schema, &catalog.stats),
            replication_bytes: self
                .whatif
                .replication_bytes(&catalog.schema, &catalog.stats),
        }
    }

    /// The interaction graph over the session's what-if indexes (Fig 2).
    pub fn interaction_graph(&self) -> InteractionGraph {
        let analysis = analyze(
            &self.inum,
            &self.workload,
            self.whatif.indexes(),
            &InteractionConfig::default(),
        );
        analysis.graph()
    }

    /// EXPLAIN one workload query under the what-if design.
    pub fn explain(&self, query_index: usize) -> String {
        let q = self.workload.query(query_index);
        self.designer.explain(&self.whatif, q)
    }

    /// "Save the rewritten queries for the new table partitions": a report
    /// of which fragments each query reads under the session's vertical
    /// partitionings.
    pub fn fragment_report(&self) -> String {
        let schema = &self.designer.catalog.schema;
        let mut out = String::new();
        for (qi, (q, _)) in self.workload.iter().enumerate() {
            for slot in 0..q.slot_count() {
                let table = q.table_of(slot);
                let Some(vp) = self.whatif.vertical(table) else {
                    continue;
                };
                let tdef = schema.table(table);
                let needed = if q.select_star {
                    (0..tdef.width()).collect()
                } else {
                    q.columns_used(slot)
                };
                let frags = vp.fragments_for(&needed);
                let _ = writeln!(
                    out,
                    "Q{} reads {} fragment(s) of {}: {}",
                    qi + 1,
                    frags.len(),
                    tdef.name,
                    frags
                        .iter()
                        .map(|&fi| {
                            let cols: Vec<&str> = vp.groups[fi]
                                .iter()
                                .map(|&c| tdef.column(c).name.as_str())
                                .collect();
                            format!("({})", cols.join(", "))
                        })
                        .collect::<Vec<_>>()
                        .join(" + ")
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgdesign_catalog::samples::sdss_catalog;
    use pgdesign_catalog::schema::TableId;
    use pgdesign_query::parse_query;

    fn setup() -> (Designer, Workload) {
        let d = Designer::new(sdss_catalog(0.01));
        let sqls = [
            "SELECT ra, dec FROM photoobj WHERE objid = 77",
            "SELECT objid FROM photoobj WHERE type = 3 AND r < 15",
            "SELECT ra FROM photoobj WHERE ra BETWEEN 100 AND 110",
        ];
        let w = Workload::from_queries(
            sqls.iter()
                .map(|s| parse_query(&d.catalog.schema, s).unwrap()),
        );
        (d, w)
    }

    #[test]
    fn whatif_indexes_show_benefit_without_materialization() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let before = s.evaluate();
        assert_eq!(before.average_benefit(), 0.0);
        assert!(s.add_index_by_name("photoobj", &["objid"]).unwrap());
        let after = s.evaluate();
        assert!(after.average_benefit() > 0.0);
        assert!(
            after.per_query[0].benefit() > 0.9,
            "point query: {:?}",
            after.per_query[0]
        );
        assert!(after.index_bytes > 0, "sizes are real, not zero");
    }

    #[test]
    fn add_index_by_name_errors_on_unknown() {
        let (d, w) = setup();
        let mut s = d.session(w);
        assert!(s.add_index_by_name("nope", &["x"]).is_err());
        assert!(s.add_index_by_name("photoobj", &["nope"]).is_err());
    }

    #[test]
    fn reset_restores_base_design() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        assert_eq!(s.design().index_count(), 1);
        s.reset();
        assert_eq!(s.design().index_count(), 0);
    }

    #[test]
    fn interaction_graph_over_session_indexes() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["type", "r"]).unwrap();
        s.add_index_by_name("photoobj", &["r", "type"]).unwrap();
        let g = s.interaction_graph();
        assert_eq!(g.indexes.len(), 2);
        assert!(g.edge_count() >= 1, "competing indexes should interact");
    }

    #[test]
    fn fragment_report_lists_partitions() {
        let (d, w) = setup();
        let mut s = d.session(w);
        let photo = TableId(0);
        s.set_vertical(VerticalPartitioning::new(
            photo,
            vec![vec![0, 1, 2], (3..16).collect()],
        ));
        let report = s.fragment_report();
        assert!(
            report.contains("Q1 reads 1 fragment(s) of photoobj"),
            "{report}"
        );
        assert!(report.contains("objid"));
    }

    #[test]
    fn explain_uses_whatif_design() {
        let (d, w) = setup();
        let mut s = d.session(w);
        assert!(s.explain(0).contains("Seq Scan"));
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        assert!(s.explain(0).contains("Index"), "{}", s.explain(0));
    }

    #[test]
    fn report_display_is_readable() {
        let (d, w) = setup();
        let mut s = d.session(w);
        s.add_index_by_name("photoobj", &["objid"]).unwrap();
        let text = s.evaluate().to_string();
        assert!(text.contains("average workload benefit"));
        assert!(text.contains("Q1"));
    }
}
