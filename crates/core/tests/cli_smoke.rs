//! Smoke tests driving the compiled `pgdesign` binary end to end, so the
//! CLI surface is covered by `cargo test`.

use std::process::Command;

fn pgdesign(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pgdesign"))
        .args(args)
        .output()
        .expect("spawn pgdesign")
}

#[test]
fn help_lists_the_three_scenario_subcommands() {
    let out = pgdesign(&["--help"]);
    assert!(out.status.success(), "--help should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    for subcommand in ["evaluate", "recommend", "online"] {
        assert!(
            text.contains(subcommand),
            "--help must list the scenario subcommand {subcommand:?}:\n{text}"
        );
    }
    // Each scenario is labelled with its number from the paper.
    for scenario in ["Scenario 1", "Scenario 2", "Scenario 3"] {
        assert!(
            text.contains(scenario),
            "--help must mention {scenario}:\n{text}"
        );
    }
}

#[test]
fn help_spellings_are_equivalent() {
    let long = pgdesign(&["--help"]);
    let short = pgdesign(&["-h"]);
    let word = pgdesign(&["help"]);
    assert!(short.status.success() && word.status.success());
    assert_eq!(long.stdout, short.stdout);
    assert_eq!(long.stdout, word.stdout);
}

#[test]
fn subcommand_followed_by_help_prints_help() {
    let out = pgdesign(&["recommend", "--help"]);
    assert!(out.status.success(), "recommend --help should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("Scenario 2"),
        "should print the help text:\n{text}"
    );
}

#[test]
fn unknown_subcommand_fails_fast() {
    let out = pgdesign(&["recomend", "--scale", "0.1"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown subcommand"), "{err}");
}

#[test]
fn missing_subcommand_fails_with_usage() {
    let out = pgdesign(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"), "stderr should carry usage:\n{err}");
}

#[test]
fn recommend_stats_prints_inum_and_matrix_counters() {
    let out = pgdesign(&[
        "recommend",
        "--scale",
        "0.003",
        "--workload",
        "builtin:5",
        "--budget-frac",
        "0.3",
        "--stats",
    ]);
    assert!(out.status.success(), "recommend --stats should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("Physical design recommendation"),
        "the report itself must still print:\n{text}"
    );
    for needle in [
        "INUM / cost-matrix statistics",
        "skeleton cache:",
        "cost matrices:",
        "matrix lookups:",
        "optimizer calls avoided",
    ] {
        assert!(
            text.contains(needle),
            "--stats must print {needle:?}:\n{text}"
        );
    }
}

#[test]
fn recommend_joint_prints_the_joint_report() {
    let out = pgdesign(&[
        "recommend",
        "--scale",
        "0.003",
        "--workload",
        "builtin:5",
        "--budget-frac",
        "0.3",
        "--joint",
        "--stats",
    ]);
    assert!(out.status.success(), "recommend --joint should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "Joint index + partition recommendation",
        "Suggested partitions",
        "Benefit per query",
        "partition-aware",
        "partition cells",
    ] {
        assert!(
            text.contains(needle),
            "--joint must print {needle:?}:\n{text}"
        );
    }
}

#[test]
fn joint_flag_is_rejected_outside_recommend() {
    let out = pgdesign(&["explain", "--sql", "SELECT ra FROM photoobj", "--joint"]);
    assert!(!out.status.success(), "--joint is recommend-only");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--joint is only supported by `recommend`"),
        "{err}"
    );
}

#[test]
fn stats_flag_is_rejected_outside_recommend() {
    let out = pgdesign(&["explain", "--sql", "SELECT ra FROM photoobj", "--stats"]);
    assert!(
        !out.status.success(),
        "--stats is recommend/session/online-only"
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("--stats is only supported by `recommend`, `session` and `online`"),
        "{err}"
    );
}

#[test]
fn recommend_without_stats_omits_counters() {
    let out = pgdesign(&[
        "recommend",
        "--scale",
        "0.003",
        "--workload",
        "builtin:5",
        "--budget-frac",
        "0.3",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        !text.contains("INUM / cost-matrix statistics"),
        "counters are opt-in:\n{text}"
    );
}

#[test]
fn session_steps_through_whatif_structures() {
    let out = pgdesign(&[
        "session",
        "--scale",
        "0.003",
        "--workload",
        "builtin:4",
        "--index",
        "photoobj:objid",
        "--vertical",
        "photoobj:objid,ra,dec|type,r",
        "--horizontal",
        "photoobj:ra:8",
        "--stats",
    ]);
    assert!(out.status.success(), "session should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "warm-up:",
        "step 1: +index photoobj(objid)",
        "step 2: +vertical photoobj",
        "step 3: +horizontal photoobj.ra",
        "average workload benefit",
        "Rewritten-query report:",
        "INUM / cost-matrix statistics",
        // The explicit publish before --stats pins generation 1, and the
        // snapshot evaluation routes through the lock-free reader path.
        "published snapshot: generation 1 (",
    ] {
        assert!(
            text.contains(needle),
            "session must print {needle:?}:\n{text}"
        );
    }
    // The TuningSession pin, end to end: after warm-up every evaluation is
    // matrix lookups, so the skeleton cache records zero cost calls.
    assert!(
        text.contains("0 cost calls"),
        "interactive evaluation must not issue per-design cost calls:\n{text}"
    );
}

#[test]
fn session_rejects_malformed_structure_specs() {
    let out = pgdesign(&[
        "session",
        "--scale",
        "0.003",
        "--workload",
        "builtin:2",
        "--vertical",
        "photoobj",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--vertical must be"), "{err}");
}

#[test]
fn online_prints_trajectory_and_matrix_counters() {
    let out = pgdesign(&[
        "online",
        "--scale",
        "0.003",
        "--queries",
        "30",
        "--epoch",
        "10",
    ]);
    assert!(out.status.success(), "online should exit 0");
    let text = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "epoch",
        "dropped",
        "cumulative:",
        "INUM / cost-matrix statistics",
        "cells reused",
        "matrix build time",
    ] {
        assert!(
            text.contains(needle),
            "online must print {needle:?}:\n{text}"
        );
    }
}

#[test]
fn explain_prints_a_plan() {
    let out = pgdesign(&[
        "explain",
        "--scale",
        "0.005",
        "--sql",
        "SELECT ra FROM photoobj WHERE objid = 5",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("Scan"),
        "plan should contain a scan node:\n{text}"
    );
}
