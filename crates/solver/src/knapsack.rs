//! 0/1 knapsack heuristics.
//!
//! COLT keeps the most profitable indexes under a storage budget every
//! epoch — an online knapsack. The greedy density heuristic is the classic
//! choice there; the exact scaled DP backs the small instances and tests.

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Profit (≥ 0).
    pub value: f64,
    /// Weight (> 0).
    pub weight: f64,
}

/// Greedy by value density. Returns the chosen item indices (ascending).
/// Classical 1/2-approximation when combined with the best single item,
/// which this implementation includes.
pub fn greedy(items: &[Item], capacity: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len())
        .filter(|&i| items[i].weight <= capacity && items[i].value > 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        let da = items[a].value / items[a].weight.max(1e-12);
        let db = items[b].value / items[b].weight.max(1e-12);
        db.total_cmp(&da)
    });
    let mut chosen = Vec::new();
    let mut used = 0.0;
    let mut total = 0.0;
    for i in order {
        if used + items[i].weight <= capacity {
            used += items[i].weight;
            total += items[i].value;
            chosen.push(i);
        }
    }
    // Compare with the single best item (approximation guarantee).
    if let Some(best) = (0..items.len())
        .filter(|&i| items[i].weight <= capacity)
        .max_by(|&a, &b| items[a].value.total_cmp(&items[b].value))
    {
        if items[best].value > total {
            return vec![best];
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Exact 0/1 knapsack via weight-scaled dynamic programming with `bins`
/// discrete capacity steps. Exact when weights are multiples of
/// `capacity / bins`; otherwise a conservative (weights rounded *up*)
/// approximation that never overfills the knapsack.
pub fn dp(items: &[Item], capacity: f64, bins: usize) -> Vec<usize> {
    if capacity <= 0.0 || items.is_empty() || bins == 0 {
        return Vec::new();
    }
    let unit = capacity / bins as f64;
    let w: Vec<usize> = items
        .iter()
        .map(|it| (it.weight / unit).ceil() as usize)
        .collect();
    // best[c] = (value, chosen bitset index chain)
    let mut best = vec![0.0f64; bins + 1];
    let mut take = vec![vec![false; items.len()]; bins + 1];
    for (i, item) in items.iter().enumerate() {
        if item.value <= 0.0 || w[i] > bins {
            continue;
        }
        for c in (w[i]..=bins).rev() {
            let candidate = best[c - w[i]] + item.value;
            if candidate > best[c] {
                best[c] = candidate;
                take[c] = take[c - w[i]].clone();
                take[c][i] = true;
            }
        }
    }
    let best_c = (0..=bins)
        .max_by(|&a, &b| best[a].total_cmp(&best[b]))
        .unwrap_or(0);
    (0..items.len()).filter(|&i| take[best_c][i]).collect()
}

/// Total value of a selection.
pub fn value_of(items: &[Item], chosen: &[usize]) -> f64 {
    chosen.iter().map(|&i| items[i].value).sum()
}

/// Total weight of a selection.
pub fn weight_of(items: &[Item], chosen: &[usize]) -> f64 {
    chosen.iter().map(|&i| items[i].weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(vw: &[(f64, f64)]) -> Vec<Item> {
        vw.iter()
            .map(|&(value, weight)| Item { value, weight })
            .collect()
    }

    #[test]
    fn greedy_prefers_density() {
        let its = items(&[(10.0, 10.0), (9.0, 3.0), (8.0, 3.0)]);
        let chosen = greedy(&its, 10.0);
        assert_eq!(chosen, vec![1, 2]);
    }

    #[test]
    fn greedy_falls_back_to_best_single_item() {
        // Density favours the small items but the big one dominates.
        let its = items(&[(100.0, 10.0), (3.0, 1.0), (3.0, 1.0)]);
        let chosen = greedy(&its, 10.0);
        assert_eq!(chosen, vec![0]);
    }

    #[test]
    fn greedy_ignores_oversized_and_worthless() {
        let its = items(&[(5.0, 100.0), (0.0, 1.0), (7.0, 2.0)]);
        let chosen = greedy(&its, 10.0);
        assert_eq!(chosen, vec![2]);
    }

    #[test]
    fn dp_is_exact_on_integral_weights() {
        let its = items(&[(6.0, 1.0), (10.0, 2.0), (12.0, 3.0)]);
        let chosen = dp(&its, 5.0, 5);
        assert_eq!(value_of(&its, &chosen), 22.0);
        assert!(weight_of(&its, &chosen) <= 5.0);
    }

    #[test]
    fn dp_never_overfills() {
        let its = items(&[(5.0, 3.3), (5.0, 3.3), (5.0, 3.3), (5.0, 3.3)]);
        let chosen = dp(&its, 10.0, 100);
        assert!(weight_of(&its, &chosen) <= 10.0 + 1e-9);
        assert!(chosen.len() <= 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(greedy(&[], 10.0).is_empty());
        assert!(dp(&[], 10.0, 10).is_empty());
        let its = items(&[(5.0, 1.0)]);
        assert!(dp(&its, 0.0, 10).is_empty());
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        fn brute(items: &[Item], cap: f64) -> f64 {
            let n = items.len();
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut v, mut w) = (0.0, 0.0);
                for i in 0..n {
                    if mask & (1 << i) != 0 {
                        v += items[i].value;
                        w += items[i].weight;
                    }
                }
                if w <= cap && v > best {
                    best = v;
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            #[test]
            fn greedy_is_half_approx(
                vw in proptest::collection::vec((0.1f64..20.0, 0.1f64..10.0), 1..10),
                cap in 1.0f64..25.0,
            ) {
                let its = items(&vw);
                let g = value_of(&its, &greedy(&its, cap));
                let opt = brute(&its, cap);
                prop_assert!(weight_of(&its, &greedy(&its, cap)) <= cap + 1e-9);
                prop_assert!(g >= opt / 2.0 - 1e-9, "greedy {g} vs opt {opt}");
            }

            #[test]
            fn dp_dominates_greedy_on_integer_weights(
                vw in proptest::collection::vec((0.1f64..20.0, 1.0f64..6.0), 1..10),
            ) {
                // Integral weights, capacity 12 with 12 bins → exact DP.
                let its: Vec<Item> = vw.iter()
                    .map(|&(v, w)| Item { value: v, weight: w.floor().max(1.0) })
                    .collect();
                let d = value_of(&its, &dp(&its, 12.0, 12));
                let g = value_of(&its, &greedy(&its, 12.0));
                let opt = brute(&its, 12.0);
                prop_assert!(d >= g - 1e-9);
                prop_assert!((d - opt).abs() < 1e-6, "dp {d} vs opt {opt}");
            }
        }
    }
}
