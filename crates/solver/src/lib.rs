//! # pgdesign-solver
//!
//! A self-contained linear and mixed-integer optimization kit.
//!
//! CoPhy casts index selection as a *convex combinatorial optimization
//! problem* and hands it to "sophisticated and mature solvers" (the paper,
//! §1). Shipping CPLEX is not an option for an open-source reproduction,
//! so this crate implements the contract CoPhy relies on:
//!
//! * [`lp`] — a dense two-phase primal simplex for linear programs
//!   (minimization, `≤ / ≥ / =` constraints, non-negative variables);
//! * [`milp`] — best-first branch-and-bound over the LP relaxation with
//!   binary variables, warm starts, node/time budgets, and — crucially for
//!   CoPhy's "quality guarantees" — a certified optimality *gap* between
//!   the incumbent and the best LP bound at any interruption point;
//! * [`knapsack`] — greedy and exact 0/1 knapsack used by COLT's storage-
//!   budgeted index retention and as a warm-start heuristic.
//!
//! The solver is deliberately dense and simple: pgdesign's ILPs have a few
//! hundred to a few thousand variables, far below where sparse revised
//! simplex pays off.

#![forbid(unsafe_code)]

pub mod knapsack;
pub mod lp;
pub mod milp;

pub use lp::{LinearProgram, LpError, LpSolution, Relation};
pub use milp::{Milp, MilpOptions, MilpResult, MilpStatus};
