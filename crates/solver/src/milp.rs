//! Best-first branch-and-bound for mixed 0/1 integer programs.
//!
//! This is the "mature solver" interface CoPhy's formulation targets: an
//! *anytime* solver that can be stopped at a node or wall-clock budget and
//! still reports a feasible incumbent together with a certified lower
//! bound — hence an optimality gap. That gap is exactly CoPhy's "quality
//! guarantee" and the time/quality trade-off knob the paper demonstrates.

use crate::lp::{LinearProgram, LpError};
use std::collections::{BTreeMap, BinaryHeap};
use std::time::{Duration, Instant};

/// Solve status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal (gap = 0 up to tolerance).
    Optimal,
    /// Stopped at a budget with a feasible incumbent.
    Feasible,
    /// No feasible assignment exists.
    Infeasible,
    /// Budget exhausted before any incumbent was found.
    NoSolution,
}

/// Budgets and tolerances.
#[derive(Debug, Clone, Copy)]
pub struct MilpOptions {
    /// Maximum branch-and-bound nodes.
    pub node_limit: usize,
    /// Wall-clock budget.
    pub time_limit: Duration,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Stop when the relative gap falls below this.
    pub gap_tol: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            node_limit: 50_000,
            time_limit: Duration::from_secs(10),
            int_tol: 1e-6,
            gap_tol: 1e-6,
        }
    }
}

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct MilpResult {
    /// Final status.
    pub status: MilpStatus,
    /// Best integer-feasible assignment found (empty if none).
    pub x: Vec<f64>,
    /// Objective of the incumbent (`f64::INFINITY` if none).
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub bound: f64,
    /// Relative optimality gap `(objective - bound) / |objective|`.
    pub gap: f64,
    /// Nodes explored.
    pub nodes: usize,
}

/// A 0/1 mixed-integer program: an LP plus a set of binary variables.
#[derive(Debug, Clone, Default)]
pub struct Milp {
    /// The LP relaxation (binary bounds included by `mark_binary`).
    pub lp: LinearProgram,
    binaries: Vec<usize>,
}

struct Node {
    bound: f64,
    fixed: BTreeMap<usize, f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want smallest bound first.
        other.bound.total_cmp(&self.bound)
    }
}

impl Milp {
    /// New empty MILP.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a binary variable with the given objective cost.
    pub fn add_binary(&mut self, cost: f64) -> usize {
        let v = self.lp.add_var(cost);
        self.lp
            .add_constraint(vec![(v, 1.0)], crate::lp::Relation::Le, 1.0);
        self.binaries.push(v);
        v
    }

    /// Add a continuous variable in `[0, ∞)`.
    pub fn add_continuous(&mut self, cost: f64) -> usize {
        self.lp.add_var(cost)
    }

    /// The binary variable ids.
    pub fn binaries(&self) -> &[usize] {
        &self.binaries
    }

    /// Evaluate the objective for a full assignment.
    fn objective_of(&self, x: &[f64]) -> f64 {
        // The LP stores costs internally; recompute via a zero-fix solve
        // would be wasteful, so mirror the cost vector through solve():
        // we instead keep it simple and ask the LP for a fixed solve.
        let fixed: BTreeMap<usize, f64> = x.iter().copied().enumerate().collect();
        match self.lp.solve_with_fixed(&fixed) {
            Ok(s) => s.objective,
            Err(_) => f64::INFINITY,
        }
    }

    /// Check integer feasibility of the binary variables.
    fn is_integral(&self, x: &[f64], tol: f64) -> bool {
        self.binaries
            .iter()
            .all(|&v| (x[v] - x[v].round()).abs() <= tol)
    }

    /// Solve with a warm-start incumbent (e.g. from a greedy heuristic).
    pub fn solve_with_warm_start(&self, opts: &MilpOptions, warm: Option<&[f64]>) -> MilpResult {
        let start = Instant::now();
        let mut nodes = 0usize;

        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        if let Some(w) = warm {
            let obj = self.objective_of(w);
            if obj.is_finite() {
                incumbent = Some((w.to_vec(), obj));
            }
        }

        // Root relaxation.
        let root = match self.lp.solve_with_fixed(&BTreeMap::new()) {
            Ok(s) => s,
            Err(LpError::Infeasible) => {
                return MilpResult {
                    status: MilpStatus::Infeasible,
                    x: Vec::new(),
                    objective: f64::INFINITY,
                    bound: f64::INFINITY,
                    gap: 0.0,
                    nodes: 0,
                };
            }
            Err(_) => {
                return MilpResult {
                    status: MilpStatus::NoSolution,
                    x: Vec::new(),
                    objective: f64::INFINITY,
                    bound: f64::NEG_INFINITY,
                    gap: f64::INFINITY,
                    nodes: 0,
                };
            }
        };

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            bound: root.objective,
            fixed: BTreeMap::new(),
        });
        let mut best_bound = root.objective;
        let mut exhausted = true;

        while let Some(node) = heap.pop() {
            best_bound = node.bound;
            // Prune against incumbent.
            if let Some((_, inc_obj)) = &incumbent {
                let gap = relative_gap(*inc_obj, node.bound);
                if node.bound >= *inc_obj - 1e-12 || gap <= opts.gap_tol {
                    // Everything remaining is worse; we're done.
                    best_bound = node.bound.min(*inc_obj);
                    break;
                }
            }
            if nodes >= opts.node_limit || start.elapsed() >= opts.time_limit {
                exhausted = false;
                break;
            }
            nodes += 1;

            let relax = match self.lp.solve_with_fixed(&node.fixed) {
                Ok(s) => s,
                Err(_) => continue, // infeasible branch
            };
            if let Some((_, inc_obj)) = &incumbent {
                if relax.objective >= *inc_obj - 1e-12 {
                    continue;
                }
            }
            if self.is_integral(&relax.x, opts.int_tol) {
                let rounded: Vec<f64> = relax
                    .x
                    .iter()
                    .enumerate()
                    .map(|(v, &val)| {
                        if self.binaries.contains(&v) {
                            val.round()
                        } else {
                            val
                        }
                    })
                    .collect();
                if incumbent
                    .as_ref()
                    .is_none_or(|(_, obj)| relax.objective < *obj)
                {
                    incumbent = Some((rounded, relax.objective));
                }
                continue;
            }
            // Rounding heuristic: try the nearest integer point for a quick
            // incumbent (helps the anytime gap enormously).
            if incumbent.is_none() {
                let mut fixed_all = node.fixed.clone();
                for &v in &self.binaries {
                    fixed_all.entry(v).or_insert(relax.x[v].round());
                }
                if let Ok(s) = self.lp.solve_with_fixed(&fixed_all) {
                    if self.is_integral(&s.x, opts.int_tol) {
                        incumbent = Some((s.x, s.objective));
                    }
                }
            }
            // Branch on the most fractional binary.
            let frac_var = self
                .binaries
                .iter()
                .filter(|v| !node.fixed.contains_key(v))
                .max_by(|&&a, &&b| {
                    let fa = (relax.x[a] - relax.x[a].round()).abs();
                    let fb = (relax.x[b] - relax.x[b].round()).abs();
                    fa.total_cmp(&fb)
                })
                .copied();
            let Some(v) = frac_var else { continue };
            for val in [relax.x[v].round(), 1.0 - relax.x[v].round()] {
                let mut fixed = node.fixed.clone();
                fixed.insert(v, val.clamp(0.0, 1.0));
                heap.push(Node {
                    bound: relax.objective,
                    fixed,
                });
            }
        }

        if exhausted && heap.is_empty() {
            // Search exhausted: the incumbent (if any) is optimal.
            if let Some((_, obj)) = &incumbent {
                best_bound = *obj;
            }
        }

        match incumbent {
            Some((x, objective)) => {
                let gap = relative_gap(objective, best_bound);
                MilpResult {
                    status: if gap <= opts.gap_tol {
                        MilpStatus::Optimal
                    } else {
                        MilpStatus::Feasible
                    },
                    x,
                    objective,
                    bound: best_bound.min(objective),
                    gap,
                    nodes,
                }
            }
            None => MilpResult {
                status: MilpStatus::NoSolution,
                x: Vec::new(),
                objective: f64::INFINITY,
                bound: best_bound,
                gap: f64::INFINITY,
                nodes,
            },
        }
    }

    /// Solve without a warm start.
    pub fn solve(&self, opts: &MilpOptions) -> MilpResult {
        self.solve_with_warm_start(opts, None)
    }
}

fn relative_gap(objective: f64, bound: f64) -> f64 {
    if !objective.is_finite() {
        return f64::INFINITY;
    }
    let denom = objective.abs().max(1e-9);
    ((objective - bound) / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::Relation;

    fn knapsack_milp(values: &[f64], weights: &[f64], cap: f64) -> Milp {
        let mut m = Milp::new();
        let vars: Vec<usize> = values.iter().map(|&v| m.add_binary(-v)).collect();
        let row: Vec<(usize, f64)> = vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect();
        m.lp.add_constraint(row, Relation::Le, cap);
        m
    }

    #[test]
    fn solves_small_knapsack_exactly() {
        // values 6,10,12 weights 1,2,3 cap 5 → take {b,c} = 22.
        let m = knapsack_milp(&[6.0, 10.0, 12.0], &[1.0, 2.0, 3.0], 5.0);
        let r = m.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 22.0).abs() < 1e-6, "{}", r.objective);
        assert_eq!(r.x[0].round(), 0.0);
        assert_eq!(r.x[1].round(), 1.0);
        assert_eq!(r.x[2].round(), 1.0);
    }

    #[test]
    fn bound_certifies_optimality() {
        let m = knapsack_milp(&[5.0, 4.0, 3.0], &[2.0, 3.0, 1.0], 4.0);
        let r = m.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!(r.gap <= 1e-6);
        assert!(r.bound <= r.objective + 1e-9);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Milp::new();
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        m.lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        let r = m.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Infeasible);
    }

    #[test]
    fn warm_start_is_respected() {
        let m = knapsack_milp(&[6.0, 10.0, 12.0], &[1.0, 2.0, 3.0], 5.0);
        // Warm start: take item 0 only (value 6, feasible).
        let warm = vec![1.0, 0.0, 0.0];
        let r = m.solve_with_warm_start(
            &MilpOptions {
                node_limit: 0, // no exploration: incumbent must come from warm start
                ..Default::default()
            },
            Some(&warm),
        );
        assert!((r.objective + 6.0).abs() < 1e-6);
        assert_eq!(r.status, MilpStatus::Feasible);
        assert!(r.gap > 0.0, "gap must be reported: {}", r.gap);
    }

    #[test]
    fn anytime_gap_shrinks_with_budget() {
        // A slightly bigger knapsack where the root LP is fractional.
        let values: Vec<f64> = (1..=12).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let weights: Vec<f64> = (1..=12).map(|i| (i * 5 % 11) as f64 + 1.0).collect();
        let m = knapsack_milp(&values, &weights, 20.0);
        let tight = m.solve(&MilpOptions {
            node_limit: 1,
            ..Default::default()
        });
        let loose = m.solve(&MilpOptions::default());
        assert!(loose.gap <= tight.gap + 1e-9);
        assert!(loose.objective <= tight.objective + 1e-9);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Choose exactly one of three options; costs 3, 1, 2 → pick #1.
        let mut m = Milp::new();
        let vars = [m.add_binary(3.0), m.add_binary(1.0), m.add_binary(2.0)];
        m.lp.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Relation::Eq, 1.0);
        let r = m.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective - 1.0).abs() < 1e-6);
        assert_eq!(r.x[vars[1]].round(), 1.0);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min -y s.t. y ≤ 10·x, y ≤ 7, x binary with cost 5.
        // Take x=1: objective 5 - 7 = -2 < 0 (x=0 gives 0).
        let mut m = Milp::new();
        let x = m.add_binary(5.0);
        let y = m.add_continuous(-1.0);
        m.lp.add_constraint(vec![(y, 1.0), (x, -10.0)], Relation::Le, 0.0);
        m.lp.add_constraint(vec![(y, 1.0)], Relation::Le, 7.0);
        let r = m.solve(&MilpOptions::default());
        assert_eq!(r.status, MilpStatus::Optimal);
        assert!((r.objective + 2.0).abs() < 1e-6, "{}", r.objective);
        assert_eq!(r.x[x].round(), 1.0);
        assert!((r.x[y] - 7.0).abs() < 1e-6);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        /// Brute-force 0/1 knapsack optimum.
        fn brute(values: &[f64], weights: &[f64], cap: f64) -> f64 {
            let n = values.len();
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let (mut v, mut w) = (0.0, 0.0);
                for i in 0..n {
                    if mask & (1 << i) != 0 {
                        v += values[i];
                        w += weights[i];
                    }
                }
                if w <= cap && v > best {
                    best = v;
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            #[test]
            fn milp_matches_brute_force(
                values in proptest::collection::vec(1.0f64..20.0, 2..8),
                weights in proptest::collection::vec(1.0f64..10.0, 2..8),
                cap in 5.0f64..25.0,
            ) {
                let n = values.len().min(weights.len());
                let (values, weights) = (&values[..n], &weights[..n]);
                let m = knapsack_milp(values, weights, cap);
                let r = m.solve(&MilpOptions::default());
                prop_assert_eq!(r.status, MilpStatus::Optimal);
                let exact = brute(values, weights, cap);
                prop_assert!((r.objective + exact).abs() < 1e-5,
                    "milp {} vs brute {}", -r.objective, exact);
            }
        }
    }
}
