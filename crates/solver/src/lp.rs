//! Dense two-phase primal simplex.
//!
//! Solves `min cᵀx  s.t.  Ax {≤,=,≥} b,  x ≥ 0` with the classic tableau
//! method: phase 1 drives artificial variables out of the basis (detecting
//! infeasibility), phase 2 optimizes the real objective. Dantzig pricing
//! with a Bland's-rule fallback guards against cycling.

use std::collections::BTreeMap;

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

#[derive(Debug, Clone)]
struct Constraint {
    coeffs: Vec<(usize, f64)>,
    rel: Relation,
    rhs: f64,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// Iteration limit hit (numerically pathological instance).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment (length = number of variables).
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// A linear program in minimization form with non-negative variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with objective coefficient `cost`; returns its id.
    pub fn add_var(&mut self, cost: f64) -> usize {
        self.objective.push(cost);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add `Σ coeffs ᵒ rhs`; duplicate variable entries are summed.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, rel: Relation, rhs: f64) {
        debug_assert!(coeffs.iter().all(|&(v, _)| v < self.num_vars()));
        self.constraints.push(Constraint { coeffs, rel, rhs });
    }

    /// Solve the LP.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with_fixed(&BTreeMap::new())
    }

    /// Solve with some variables fixed to constants (they are substituted
    /// out, keeping the tableau small — this is how branch-and-bound
    /// explores 0/1 branches).
    pub fn solve_with_fixed(&self, fixed: &BTreeMap<usize, f64>) -> Result<LpSolution, LpError> {
        // Map free variables to dense columns.
        let n_all = self.num_vars();
        let mut col_of: Vec<Option<usize>> = vec![None; n_all];
        let mut free_vars: Vec<usize> = Vec::new();
        for v in 0..n_all {
            if !fixed.contains_key(&v) {
                col_of[v] = Some(free_vars.len());
                free_vars.push(v);
            }
        }
        let n = free_vars.len();

        let mut fixed_cost = 0.0;
        for (&v, &val) in fixed {
            fixed_cost += self.objective[v] * val;
        }

        // Build rows with substituted rhs.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            let mut dense = vec![0.0; n];
            let mut rhs = c.rhs;
            for &(v, a) in &c.coeffs {
                match col_of[v] {
                    Some(j) => dense[j] += a,
                    None => rhs -= a * fixed[&v],
                }
            }
            // Constant rows: check feasibility directly.
            if dense.iter().all(|&a| a.abs() < 1e-12) {
                let ok = match c.rel {
                    Relation::Le => rhs >= -1e-7,
                    Relation::Ge => rhs <= 1e-7,
                    Relation::Eq => rhs.abs() <= 1e-7,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                continue;
            }
            rows.push((dense, c.rel, rhs));
        }

        if n == 0 {
            return Ok(LpSolution {
                x: (0..n_all)
                    .map(|v| fixed.get(&v).copied().unwrap_or(0.0))
                    .collect(),
                objective: fixed_cost,
            });
        }

        let sol = simplex(&self.objective_dense(&free_vars), &rows)?;
        let mut x = vec![0.0; n_all];
        for (&v, &val) in fixed {
            x[v] = val;
        }
        for (j, &v) in free_vars.iter().enumerate() {
            x[v] = sol.0[j];
        }
        Ok(LpSolution {
            x,
            objective: sol.1 + fixed_cost,
        })
    }

    fn objective_dense(&self, free_vars: &[usize]) -> Vec<f64> {
        free_vars.iter().map(|&v| self.objective[v]).collect()
    }
}

const EPS: f64 = 1e-9;
const MAX_ITERS: usize = 50_000;

/// Core tableau simplex: `min cᵀx, rows, x ≥ 0`.
/// Returns (x, objective).
fn simplex(c: &[f64], rows: &[(Vec<f64>, Relation, f64)]) -> Result<(Vec<f64>, f64), LpError> {
    let n = c.len();
    let m = rows.len();

    // Normalise rhs ≥ 0 and count auxiliary columns.
    let mut norm: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for (coeffs, rel, rhs) in rows {
        if *rhs < 0.0 {
            let flipped: Vec<f64> = coeffs.iter().map(|a| -a).collect();
            let new_rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
            norm.push((flipped, new_rel, -rhs));
        } else {
            norm.push((coeffs.clone(), *rel, *rhs));
        }
    }

    let n_slack = norm
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Le | Relation::Ge))
        .count();
    let n_art = norm
        .iter()
        .filter(|(_, r, _)| matches!(r, Relation::Ge | Relation::Eq))
        .count();
    let total = n + n_slack + n_art;

    // tableau[m][total + 1]; last column = rhs.
    let mut t = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut s_idx = n;
    let mut a_idx = n + n_slack;
    for (i, (coeffs, rel, rhs)) in norm.iter().enumerate() {
        t[i][..n].copy_from_slice(coeffs);
        t[i][total] = *rhs;
        match rel {
            Relation::Le => {
                t[i][s_idx] = 1.0;
                basis[i] = s_idx;
                s_idx += 1;
            }
            Relation::Ge => {
                t[i][s_idx] = -1.0;
                s_idx += 1;
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                a_idx += 1;
            }
            Relation::Eq => {
                t[i][a_idx] = 1.0;
                basis[i] = a_idx;
                a_idx += 1;
            }
        }
    }

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        let mut c1 = vec![0.0; total];
        for j in (n + n_slack)..total {
            c1[j] = 1.0;
        }
        let obj = run_phase(&mut t, &mut basis, &c1, total)?;
        if obj > 1e-6 {
            return Err(LpError::Infeasible);
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..m {
            if basis[i] >= n + n_slack {
                if let Some(j) = (0..n + n_slack).find(|&j| t[i][j].abs() > 1e-7) {
                    pivot(&mut t, &mut basis, i, j, total);
                }
                // If no pivot column exists the row is redundant (all
                // zeros); the artificial stays basic at value 0 — harmless.
            }
        }
    }

    // Phase 2: real objective (artificial columns frozen at zero).
    let mut c2 = vec![0.0; total];
    c2[..n].copy_from_slice(c);
    let art_start = n + n_slack;
    let obj = run_phase_restricted(&mut t, &mut basis, &c2, total, art_start)?;

    let mut x = vec![0.0; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[i][total];
        }
    }
    Ok((x, obj))
}

fn run_phase(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    c: &[f64],
    total: usize,
) -> Result<f64, LpError> {
    run_phase_restricted(t, basis, c, total, total)
}

/// Simplex iterations; columns at `forbidden_from..` may not enter.
fn run_phase_restricted(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    c: &[f64],
    total: usize,
    forbidden_from: usize,
) -> Result<f64, LpError> {
    let m = t.len();
    for iter in 0..MAX_ITERS {
        // Reduced costs: r_j = c_j - c_B' B^-1 A_j (computed row-wise).
        let mut reduced = c[..total].to_vec();
        for (i, &b) in basis.iter().enumerate() {
            let cb = c[b];
            if cb != 0.0 {
                for j in 0..total {
                    reduced[j] -= cb * t[i][j];
                }
            }
        }
        // Entering column.
        let bland = iter > 4 * (m + total);
        let mut enter: Option<usize> = None;
        if bland {
            for (j, &rj) in reduced.iter().enumerate().take(forbidden_from) {
                if rj < -EPS {
                    enter = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -EPS;
            for (j, &rj) in reduced.iter().enumerate().take(forbidden_from) {
                if rj < best {
                    best = rj;
                    enter = Some(j);
                }
            }
        }
        let Some(j) = enter else {
            // Optimal.
            let mut obj = 0.0;
            for (i, &b) in basis.iter().enumerate() {
                obj += c[b] * t[i][total];
            }
            return Ok(obj);
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][j] > EPS {
                let ratio = t[i][total] / t[i][j];
                if ratio < best_ratio - EPS
                    || (bland
                        && (ratio - best_ratio).abs() <= EPS
                        && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(i) = leave else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, i, j, total);
    }
    Err(LpError::IterationLimit)
}

fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let m = t.len();
    let pv = t[row][col];
    for j in 0..=total {
        t[row][j] /= pv;
    }
    for i in 0..m {
        if i != row {
            let factor = t[i][col];
            if factor.abs() > 0.0 {
                for j in 0..=total {
                    t[i][j] -= factor * t[row][j];
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn simple_minimization() {
        // min -x - 2y  s.t.  x + y ≤ 4, x ≤ 2, y ≤ 3
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(-2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Le, 3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -7.0), "{}", s.objective);
        assert!(approx(s.x[x], 1.0) && approx(s.x[y], 3.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y  s.t. x + y = 10, x ≥ 3
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 3.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 10.0));
        assert!(s.x[x] >= 3.0 - 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, 0.0); // -x ≤ 0, x free upward
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalised() {
        // x ≥ 0, constraint -x ≤ -2  ⇔  x ≥ 2; min x → 2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, -1.0)], Relation::Le, -2.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, 2.0));
    }

    #[test]
    fn fixed_variables_substituted() {
        // min x + y  s.t. x + y ≥ 5, with y fixed to 2 → x = 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let mut fix = BTreeMap::new();
        fix.insert(y, 2.0);
        let s = lp.solve_with_fixed(&fix).unwrap();
        assert!(approx(s.objective, 5.0));
        assert!(approx(s.x[x], 3.0));
        assert!(approx(s.x[y], 2.0));
    }

    #[test]
    fn fixing_can_make_infeasible() {
        // x ≤ 1 with x fixed to 2 → infeasible (constant row check).
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        let mut fix = BTreeMap::new();
        fix.insert(x, 2.0);
        assert_eq!(lp.solve_with_fixed(&fix).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn all_vars_fixed() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(3.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 5.0);
        let mut fix = BTreeMap::new();
        fix.insert(x, 4.0);
        let s = lp.solve_with_fixed(&fix).unwrap();
        assert!(approx(s.objective, 12.0));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(-1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Le, 2.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        let s = lp.solve().unwrap();
        assert!(approx(s.objective, -1.0));
    }

    #[test]
    fn lp_relaxation_of_knapsack() {
        // max 6a + 10b + 12c (min negative), weights 1,2,3 ≤ 5; a,b,c ∈ [0,1].
        let mut lp = LinearProgram::new();
        let a = lp.add_var(-6.0);
        let b = lp.add_var(-10.0);
        let c = lp.add_var(-12.0);
        lp.add_constraint(vec![(a, 1.0), (b, 2.0), (c, 3.0)], Relation::Le, 5.0);
        for v in [a, b, c] {
            lp.add_constraint(vec![(v, 1.0)], Relation::Le, 1.0);
        }
        let s = lp.solve().unwrap();
        // LP optimum: a=1, b=1, c=2/3 → -(6+10+8) = -24.
        assert!(approx(s.objective, -24.0), "{}", s.objective);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn solution_is_feasible(
                costs in proptest::collection::vec(-5.0f64..5.0, 2..6),
                rows in proptest::collection::vec(
                    (proptest::collection::vec(0.0f64..3.0, 2..6), 1.0f64..20.0),
                    1..6
                ),
            ) {
                let mut lp = LinearProgram::new();
                let vars: Vec<usize> = costs.iter().map(|&c| lp.add_var(c.max(0.01))).collect();
                for (coeffs, rhs) in &rows {
                    let row: Vec<(usize, f64)> = vars
                        .iter()
                        .zip(coeffs.iter())
                        .map(|(&v, &a)| (v, a))
                        .collect();
                    lp.add_constraint(row, Relation::Le, *rhs);
                }
                // Positive costs and ≤ constraints: x = 0 is feasible and
                // optimal-ish; solver must return a feasible point.
                let s = lp.solve().unwrap();
                for (coeffs, rhs) in &rows {
                    let lhs: f64 = vars
                        .iter()
                        .zip(coeffs.iter())
                        .map(|(&v, &a)| a * s.x[v])
                        .sum();
                    prop_assert!(lhs <= rhs + 1e-6);
                }
                for &v in &vars {
                    prop_assert!(s.x[v] >= -1e-9);
                }
            }
        }
    }
}
